/**
 * @file
 * The chunk store's correctness contract, pinned exhaustively:
 *
 *  1. Equivalence — full-campaign SimResults are bitwise-identical with
 *     the store disabled, cold, warm, eviction-thrashing or disk-backed,
 *     at jobs 1/8/16, in detailed and sampled modes. The store may only
 *     ever be a speed lever, never a correctness hazard.
 *  2. LRU mechanics — exact-budget eviction order, find() recency
 *     touches, and the one-resident-chunk floor.
 *  3. Disk-tier validation — every corruption mode (missing file,
 *     truncation, bit flip, key/header mismatch) surfaces as the
 *     documented taxonomy, drops the bad record, and falls back to
 *     deterministic regeneration. Never a crash, never silently wrong.
 *  4. Concurrency — producer/consumer stress across a shared store and
 *     a live thread pool (the TSan CI job runs the *Concurrent* cases).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_inject.hh"
#include "common/thread_pool.hh"
#include "sim/configs.hh"
#include "sim/parallel_runner.hh"
#include "sim_result_compare.hh"
#include "trace/chunk_store.hh"
#include "trace/suite.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stream.hh"
#include "trace/trace_view.hh"

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 20000;
constexpr uint64_t kWarm = 5000;
constexpr size_t kChunk = 1024; // small power-of-two chunk for tests

const FaultPlan kNoFaults;

/** Campaign workloads spanning every suite category. */
std::vector<std::string>
campaignNames()
{
    return {"mcf", "omnetpp", "hmmer", "hplinpack", "tpcc", "gobmk"};
}

ChunkKey
keyAt(const std::string &kernel, uint64_t index,
      uint32_t chunk_ops = kChunk)
{
    auto wl = makeWorkload(kernel);
    return ChunkKey{kernel, wl->seed(), chunk_ops, index};
}

/** An arbitrary full chunk for LRU unit tests (content irrelevant). */
ChunkStore::Chunk
dummyChunk(uint32_t chunk_ops, uint8_t tag)
{
    ChunkStore::Chunk chunk(chunk_ops);
    for (auto &op : chunk)
        op.pc = tag;
    return chunk;
}

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<MicroOp>
drain(TraceStream &stream)
{
    std::vector<MicroOp> out;
    out.reserve(stream.size());
    TraceView view = stream.view();
    for (size_t p = 0; p < stream.size(); ++p) {
        stream.ensure(p);
        out.push_back(view.at(p));
    }
    return out;
}

void
expectOpsEqual(const std::vector<MicroOp> &got,
               const std::vector<MicroOp> &want, const std::string &what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    // Field-wise, not memcmp: the struct carries tail padding.
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].pc, want[i].pc) << what << " op " << i;
        ASSERT_EQ(got[i].cls, want[i].cls) << what << " op " << i;
        ASSERT_EQ(got[i].memAddr, want[i].memAddr) << what << " op " << i;
        ASSERT_EQ(got[i].value, want[i].value) << what << " op " << i;
        ASSERT_EQ(got[i].dst, want[i].dst) << what << " op " << i;
        ASSERT_EQ(got[i].taken, want[i].taken) << what << " op " << i;
        for (uint32_t s = 0; s < kMaxSrcs; ++s)
            ASSERT_EQ(got[i].src[s], want[i].src[s])
                << what << " op " << i;
    }
}

IsolationOptions
optsWithStore(ChunkStore *store)
{
    IsolationOptions opts;
    opts.plan = &kNoFaults;
    opts.backoffMs = 0;
    opts.store = store;
    return opts;
}

/** FNV-1a golden over a whole campaign's serialized results. */
uint64_t
campaignHash(const std::vector<RunOutcome> &outcomes)
{
    uint64_t h = 1469598103934665603ULL;
    for (const auto &o : outcomes) {
        EXPECT_TRUE(o.ok()) << o.workload;
        const std::string json = o.result.toJson();
        h = fnv1a(json.data(), json.size(), h);
    }
    return h;
}

// --------------------- ChunkGenerator ----------------------------

TEST(ChunkGenerator, ChunksAreThePrefixFunctionOfKernelAndSeed)
{
    // The store's addressing invariant: chunk k of (kernel, seed,
    // chunkOps) has one canonical content, independent of any
    // consumer's total op budget — the generator's emitter budget is
    // unbounded and kernels only observe done().
    for (const std::string name : {"mcf", "tpcc", "hplinpack"}) {
        auto oracle_wl = makeWorkload(name);
        Trace oracle = oracle_wl->generate(4 * kChunk);

        auto wl = makeWorkload(name);
        ChunkGenerator gen;
        std::vector<MicroOp> got;
        for (uint64_t i = 0; i < 4; ++i) {
            EXPECT_EQ(gen.nextIndex(), i);
            std::vector<MicroOp> chunk = gen.next(*wl, kChunk);
            ASSERT_EQ(chunk.size(), kChunk) << name;
            got.insert(got.end(), chunk.begin(), chunk.end());
        }
        expectOpsEqual(got, oracle.ops, name);

        // discard() + regenerate restarts at canonical chunk 0.
        gen.discard();
        EXPECT_FALSE(gen.started());
        std::vector<MicroOp> again = gen.next(*wl, kChunk);
        expectOpsEqual(again,
                       {oracle.ops.begin(), oracle.ops.begin() + kChunk},
                       name + " after discard");
    }
}

// ----------------------- LRU mechanics ---------------------------

TEST(ChunkStoreLru, FindMissesColdThenHitsAfterPut)
{
    ChunkStore store;
    ChunkKey key = keyAt("mcf", 0, 64);
    EXPECT_EQ(store.find(key), nullptr);
    auto put = store.put(key, dummyChunk(64, 1));
    ASSERT_NE(put, nullptr);
    auto hit = store.find(key);
    EXPECT_EQ(hit, put) << "the resident chunk is shared, not copied";
    auto s = store.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.puts, 1u);
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(store.residentBytes(), 64 * sizeof(MicroOp));
}

TEST(ChunkStoreLru, FirstWriterWinsOnDuplicatePut)
{
    ChunkStore store;
    ChunkKey key = keyAt("mcf", 0, 64);
    auto first = store.put(key, dummyChunk(64, 1));
    auto second = store.put(key, dummyChunk(64, 1));
    EXPECT_EQ(first, second);
    EXPECT_EQ(store.stats().puts, 1u) << "duplicates are not re-published";
    EXPECT_EQ(store.residentBytes(), 64 * sizeof(MicroOp));
}

TEST(ChunkStoreLru, EvictsLeastRecentlyUsedAtExactBudget)
{
    constexpr uint32_t ops = 64;
    const size_t chunk_bytes = ops * sizeof(MicroOp);
    ChunkStore::Config cfg;
    cfg.memBudgetBytes = 3 * chunk_bytes; // exactly three chunks
    ChunkStore store(cfg);

    store.put(keyAt("mcf", 0, ops), dummyChunk(ops, 0));
    store.put(keyAt("mcf", 1, ops), dummyChunk(ops, 1));
    store.put(keyAt("mcf", 2, ops), dummyChunk(ops, 2));
    EXPECT_EQ(store.stats().evictions, 0u)
        << "at budget is not over budget";
    EXPECT_EQ(store.residentBytes(), 3 * chunk_bytes);

    // Touch chunk 0: it becomes most-recent, chunk 1 the LRU victim.
    EXPECT_NE(store.find(keyAt("mcf", 0, ops)), nullptr);
    store.put(keyAt("mcf", 3, ops), dummyChunk(ops, 3));
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_EQ(store.residentBytes(), 3 * chunk_bytes);
    EXPECT_EQ(store.find(keyAt("mcf", 1, ops)), nullptr)
        << "the least-recently-used chunk is the victim";
    EXPECT_NE(store.find(keyAt("mcf", 0, ops)), nullptr);
    EXPECT_NE(store.find(keyAt("mcf", 2, ops)), nullptr);
    EXPECT_NE(store.find(keyAt("mcf", 3, ops)), nullptr);
}

TEST(ChunkStoreLru, BudgetFloorKeepsTheNewestChunkResident)
{
    ChunkStore::Config cfg;
    cfg.memBudgetBytes = 1; // below a single chunk
    ChunkStore store(cfg);
    auto a = store.put(keyAt("mcf", 0, 64), dummyChunk(64, 0));
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(store.residentBytes(), 64 * sizeof(MicroOp))
        << "never evicted below one resident chunk";
    auto b = store.put(keyAt("mcf", 1, 64), dummyChunk(64, 1));
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_EQ(store.find(keyAt("mcf", 0, 64)), nullptr);
    // Shared ownership keeps an evicted-then-reheld chunk valid.
    EXPECT_EQ(a->size(), 64u);
}

// ------------------------ Disk tier ------------------------------

/** Writes one real chunk's record to @p dir and returns its path. */
std::string
writeOneRecord(const std::string &dir)
{
    auto wl = makeWorkload("mcf");
    ChunkGenerator gen;
    ChunkStore::Config cfg;
    cfg.diskDir = dir;
    ChunkStore writer(cfg);
    writer.put(keyAt("mcf", 0), gen.next(*wl, kChunk));
    return writer.diskPath(keyAt("mcf", 0));
}

void
rewriteFile(const std::string &path, const std::vector<char> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

std::vector<char>
readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::fseek(f, 0, SEEK_END);
    std::vector<char> bytes(static_cast<size_t>(std::ftell(f)));
    std::rewind(f);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    return bytes;
}

TEST(ChunkStoreDisk, RoundTripServesWarmStartAcrossStoreInstances)
{
    const std::string dir = freshDir("chunk_store_roundtrip");
    auto wl = makeWorkload("mcf");
    ChunkGenerator gen;
    std::vector<MicroOp> original = gen.next(*wl, kChunk);

    {
        ChunkStore::Config cfg;
        cfg.diskDir = dir;
        ChunkStore writer(cfg);
        writer.put(keyAt("mcf", 0), original);
        EXPECT_TRUE(std::filesystem::exists(writer.diskPath(keyAt("mcf", 0))));
    }

    ChunkStore::Config cfg;
    cfg.diskDir = dir;
    ChunkStore reader(cfg);
    auto loaded = reader.loadDiskChecked(keyAt("mcf", 0));
    ASSERT_TRUE(loaded.ok())
        << (loaded.ok() ? "" : loaded.error().message);
    expectOpsEqual(*loaded.value(), original, "disk round trip");

    auto hit = reader.find(keyAt("mcf", 0));
    ASSERT_NE(hit, nullptr);
    expectOpsEqual(*hit, original, "disk-tier find");
    auto s = reader.stats();
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.corrupt, 0u);

    // Second find comes from the memory tier.
    ASSERT_NE(reader.find(keyAt("mcf", 0)), nullptr);
    EXPECT_EQ(reader.stats().diskHits, 1u);

    std::filesystem::remove_all(dir);
}

TEST(ChunkStoreDisk, UnwritableCacheDirDegradesToMemoryTier)
{
    // A path below a regular file cannot be created, even by root.
    const std::string blocker = freshDir("chunk_store_blocker");
    rewriteFile(blocker, {'x'});
    ChunkStore::Config cfg;
    cfg.diskDir = blocker + "/nested/cache";
    ChunkStore store(cfg);
    EXPECT_TRUE(store.diskDir().empty())
        << "an uncreatable dir disables the disk tier, not the store";
    EXPECT_NE(store.put(keyAt("mcf", 0, 64), dummyChunk(64, 0)), nullptr);
    EXPECT_NE(store.find(keyAt("mcf", 0, 64)), nullptr);
}

TEST(ChunkStoreDisk, MissingFileIsAPlainMissNotCorruption)
{
    const std::string dir = freshDir("chunk_store_missing");
    std::string path = writeOneRecord(dir);
    std::filesystem::remove(path);

    ChunkStore::Config cfg;
    cfg.diskDir = dir;
    ChunkStore store(cfg);
    auto loaded = store.loadDiskChecked(keyAt("mcf", 0));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::Config)
        << "absence is a config-level miss, not data corruption";
    EXPECT_EQ(store.find(keyAt("mcf", 0)), nullptr);
    auto s = store.stats();
    EXPECT_EQ(s.corrupt, 0u);
    EXPECT_EQ(s.misses, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ChunkStoreDisk, TruncatedRecordIsCorruptAndDropped)
{
    const std::string dir = freshDir("chunk_store_truncated");
    std::string path = writeOneRecord(dir);
    std::vector<char> bytes = readAll(path);
    bytes.pop_back();
    rewriteFile(path, bytes);

    ChunkStore::Config cfg;
    cfg.diskDir = dir;
    ChunkStore store(cfg);
    auto loaded = store.loadDiskChecked(keyAt("mcf", 0));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::TraceCorrupt);
    EXPECT_NE(loaded.error().message.find("truncated or foreign"),
              std::string::npos)
        << loaded.error().message;

    EXPECT_EQ(store.find(keyAt("mcf", 0)), nullptr)
        << "corruption reports a miss so the caller regenerates";
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(std::filesystem::exists(path))
        << "the bad record is dropped so the slot can be rewritten";
    std::filesystem::remove_all(dir);
}

TEST(ChunkStoreDisk, BitFlipFailsTheChecksumAndIsDropped)
{
    const std::string dir = freshDir("chunk_store_bitflip");
    std::string path = writeOneRecord(dir);
    std::vector<char> bytes = readAll(path);
    bytes[bytes.size() / 2] ^= 0x40; // one flipped bit mid-payload
    rewriteFile(path, bytes);

    ChunkStore::Config cfg;
    cfg.diskDir = dir;
    ChunkStore store(cfg);
    auto loaded = store.loadDiskChecked(keyAt("mcf", 0));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::TraceCorrupt);
    EXPECT_NE(loaded.error().message.find("FNV-1a checksum mismatch"),
              std::string::npos)
        << loaded.error().message;
    EXPECT_EQ(store.find(keyAt("mcf", 0)), nullptr);
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(std::filesystem::exists(path));
    std::filesystem::remove_all(dir);
}

TEST(ChunkStoreDisk, ForeignRecordAtTheWrongPathFailsTheHeaderCheck)
{
    // A checksum-valid record renamed onto another key's path (same
    // kernel and chunk size, different index → same byte size) must be
    // rejected by the header/key cross-check, not served as chunk 1.
    const std::string dir = freshDir("chunk_store_foreign");
    std::string path0 = writeOneRecord(dir);

    ChunkStore::Config cfg;
    cfg.diskDir = dir;
    ChunkStore store(cfg);
    std::string path1 = store.diskPath(keyAt("mcf", 1));
    std::filesystem::rename(path0, path1);

    auto loaded = store.loadDiskChecked(keyAt("mcf", 1));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::TraceCorrupt);
    EXPECT_NE(
        loaded.error().message.find("does not match the requested key"),
        std::string::npos)
        << loaded.error().message;
    EXPECT_EQ(store.find(keyAt("mcf", 1)), nullptr);
    EXPECT_EQ(store.stats().corrupt, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ChunkStoreDisk, CorruptedCacheRegeneratesBitwiseIdenticalStream)
{
    // End-to-end containment: corrupt three chunks of a warm disk cache
    // three different ways, then demand the stream still serve exactly
    // the canonical op sequence.
    const std::string dir = freshDir("chunk_store_regen");
    auto oracle_wl = makeWorkload("mcf");
    const size_t total = 5 * kChunk + 123;
    Trace oracle = oracle_wl->generate(total);

    {
        ChunkStore::Config cfg;
        cfg.diskDir = dir;
        ChunkStore warm(cfg);
        auto wl = makeWorkload("mcf");
        TraceStream stream(*wl, total, kChunk,
                           std::function<double()>(), &warm);
        drain(stream);
        EXPECT_EQ(stream.storeMisses(), 6u) << "cold store: all misses";
    }

    ChunkStore::Config cfg;
    cfg.diskDir = dir;
    ChunkStore store(cfg);
    { // chunk 1: truncation
        std::string p = store.diskPath(keyAt("mcf", 1));
        std::vector<char> bytes = readAll(p);
        bytes.resize(bytes.size() / 2);
        rewriteFile(p, bytes);
    }
    { // chunk 2: bit flip
        std::string p = store.diskPath(keyAt("mcf", 2));
        std::vector<char> bytes = readAll(p);
        bytes[10] ^= 0x01;
        rewriteFile(p, bytes);
    }
    // chunk 3: missing entirely
    std::filesystem::remove(store.diskPath(keyAt("mcf", 3)));

    auto wl = makeWorkload("mcf");
    TraceStream stream(*wl, total, kChunk, std::function<double()>(),
                       &store);
    std::vector<MicroOp> streamed = drain(stream);
    expectOpsEqual(streamed, oracle.ops, "regenerated stream");
    EXPECT_EQ(store.stats().corrupt, 2u)
        << "truncation and bit flip count; absence is a plain miss";
    EXPECT_GT(stream.storeHits(), 0u) << "intact chunks still serve";
    EXPECT_GT(stream.storeMisses(), 0u);
    std::filesystem::remove_all(dir);
}

// ------------------ Campaign equivalence -------------------------

/**
 * The acceptance matrix: one fault-free baseline without a store, then
 * every store state at every job count must hash to the same campaign
 * golden and compare bitwise-equal slot by slot.
 */
void
expectStoreStateEquivalence(const SimConfig &cfg)
{
    const std::vector<std::string> names = campaignNames();
    auto baseline = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                         optsWithStore(nullptr));
    const uint64_t golden = campaignHash(baseline);

    const std::string dir = freshDir(std::string("chunk_store_equiv_") +
                                     cfg.name);
    ChunkStore::Config disk_cfg;
    disk_cfg.diskDir = dir;
    ChunkStore warm(disk_cfg); // shared across job counts: stays warm
    ChunkStore::Config tiny_cfg;
    tiny_cfg.memBudgetBytes = 1; // evicts after every insertion
    ChunkStore evicting(tiny_cfg);

    for (unsigned jobs : {1u, 8u, 16u}) {
        SCOPED_TRACE(cfg.name + " jobs=" + std::to_string(jobs));

        auto off = runWorkloadsIsolated(cfg, names, kInstr, kWarm, jobs,
                                        optsWithStore(nullptr));
        EXPECT_EQ(campaignHash(off), golden);

        ChunkStore cold;
        auto with_cold = runWorkloadsIsolated(cfg, names, kInstr, kWarm,
                                              jobs, optsWithStore(&cold));
        EXPECT_EQ(campaignHash(with_cold), golden);
        EXPECT_GT(cold.stats().puts, 0u);

        auto with_warm = runWorkloadsIsolated(cfg, names, kInstr, kWarm,
                                              jobs, optsWithStore(&warm));
        EXPECT_EQ(campaignHash(with_warm), golden);

        auto thrash = runWorkloadsIsolated(cfg, names, kInstr, kWarm,
                                           jobs,
                                           optsWithStore(&evicting));
        EXPECT_EQ(campaignHash(thrash), golden);

        for (size_t i = 0; i < names.size(); ++i) {
            expectBitwiseEqual(with_cold[i].result, baseline[i].result);
            expectBitwiseEqual(with_warm[i].result, baseline[i].result);
            expectBitwiseEqual(thrash[i].result, baseline[i].result);
        }
    }
    EXPECT_GT(warm.stats().hits, 0u) << "the warm store actually served";
    EXPECT_GT(evicting.stats().evictions, 0u)
        << "the tiny store actually thrashed";
    std::filesystem::remove_all(dir);
}

TEST(ChunkStoreEquivalence, DetailedBaselineCampaigns)
{
    expectStoreStateEquivalence(baselineSkx());
}

TEST(ChunkStoreEquivalence, DetailedCatchCampaigns)
{
    // The CATCH config exercises the TACT feeder, which reads the
    // stream's functional memory — the path the store keeps canonical
    // by replaying Store ops.
    expectStoreStateEquivalence(withCatch(baselineSkx()));
}

TEST(ChunkStoreEquivalence, SampledCampaigns)
{
    SimConfig cfg = baselineSkx();
    cfg.sampling.mode = SampleMode::Sampled;
    cfg.sampling.intervalInstrs = 5000;
    cfg.sampling.windowInstrs = 2000;
    cfg.sampling.warmupInstrs = 2000;
    expectStoreStateEquivalence(cfg);
}

TEST(ChunkStoreEquivalence, InjectedChunkStoreFaultTaxonomy)
{
    // The reserved "chunk-store" injection target corrupts every disk
    // read deterministically; the taxonomy must be trace-corrupt.
    auto parsed = FaultPlan::parse("trace-corrupt:chunk-store");
    ASSERT_TRUE(parsed.ok());
    FaultPlan plan = std::move(parsed).value();
    const std::string dir = freshDir("chunk_store_inject_taxonomy");
    std::string path = writeOneRecord(dir);
    ASSERT_TRUE(std::filesystem::exists(path));

    ChunkStore::Config cfg;
    cfg.diskDir = dir;
    cfg.plan = &plan;
    ChunkStore store(cfg);
    auto loaded = store.loadDiskChecked(keyAt("mcf", 0));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::TraceCorrupt);
    EXPECT_NE(loaded.error().message.find("injected"), std::string::npos);
    std::filesystem::remove_all(dir);
}

// ------------------------ Concurrency ----------------------------

TEST(ChunkStoreConcurrent, SharedStoreProducerConsumerStress)
{
    // Eight consumer threads drain store-backed streams of two kernel
    // identities against a shared evicting, disk-backed store while a
    // pool-attached producer races them. Every drained sequence must be
    // canonical; TSan (CI) watches the synchronization.
    const std::string dir = freshDir("chunk_store_stress");
    ChunkStore::Config cfg;
    cfg.memBudgetBytes = 8 * kChunk * sizeof(MicroOp);
    cfg.diskDir = dir;
    ChunkStore store(cfg);

    const size_t total = 6 * kChunk + 123;
    auto mcf_wl = makeWorkload("mcf");
    auto omnetpp_wl = makeWorkload("omnetpp");
    Trace mcf_oracle = mcf_wl->generate(total);
    Trace omnetpp_oracle = omnetpp_wl->generate(total);

    ThreadPool pool(4);
    ProducerPoolGuard producer(&store, &pool);
    std::vector<std::thread> consumers;
    for (int t = 0; t < 8; ++t) {
        consumers.emplace_back([&, t] {
            const std::string name = t % 2 ? "omnetpp" : "mcf";
            const Trace &oracle = t % 2 ? omnetpp_oracle : mcf_oracle;
            for (int rep = 0; rep < 2; ++rep) {
                auto wl = makeWorkload(name);
                TraceStream stream(*wl, total, kChunk,
                                   std::function<double()>(), &store);
                std::vector<MicroOp> got = drain(stream);
                expectOpsEqual(got, oracle.ops,
                               name + " thread " + std::to_string(t));
            }
        });
    }
    for (auto &c : consumers)
        c.join();
    // The guard (declared after the pool) detaches the producer before
    // the pool destructor drains; this ordering is part of the API.
    std::filesystem::remove_all(dir);
}

TEST(ChunkStoreConcurrent, ParallelCampaignSharesOneDiskStore)
{
    // jobs=16 over a store whose pool also runs the producer: the
    // complete production path (find/put/disk/eviction/producer) under
    // real campaign concurrency must stay bitwise-equivalent.
    const std::string dir = freshDir("chunk_store_campaign_stress");
    SimConfig cfg = baselineSkx();
    const std::vector<std::string> names = campaignNames();
    auto baseline = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                         optsWithStore(nullptr));

    ChunkStore::Config store_cfg;
    store_cfg.diskDir = dir;
    store_cfg.memBudgetBytes = 4 * TraceStream::kDefaultChunkOps *
                               sizeof(MicroOp);
    ChunkStore store(store_cfg);
    for (int rep = 0; rep < 2; ++rep) {
        auto got = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 16,
                                        optsWithStore(&store));
        for (size_t i = 0; i < names.size(); ++i)
            expectBitwiseEqual(got[i].result, baseline[i].result);
    }
    EXPECT_GT(store.stats().hits, 0u);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace catchsim
