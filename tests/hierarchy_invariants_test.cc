/**
 * @file
 * Randomised invariant checking for the cache hierarchy: drive long
 * random operation sequences (loads, stores, code fetches, TACT and
 * oracle prefetches) against every topology and then verify structural
 * invariants by probing the line population. This is the property-based
 * safety net for the inclusion/exclusion state machines.
 *
 * The mixed-traffic tests interleave the functional-warming entry
 * points (warmAccess, warmTactPrefetch) with demand traffic: warming
 * funnels through the same per-level fill helpers as the demand paths,
 * so the exclusive-duplication and inclusive-hole invariants must hold
 * across any mix of warm and detailed accesses.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "sim/configs.hh"

namespace catchsim
{
namespace
{

/** Small geometry so random traffic exercises evictions heavily. */
SimConfig
tinyConfig(InclusionPolicy policy)
{
    SimConfig cfg = baselineSkx();
    cfg.l1i = CacheGeometry{4 * 1024, 4, 5};
    cfg.l1d = CacheGeometry{4 * 1024, 4, 5};
    cfg.l2 = CacheGeometry{16 * 1024, 8, 15};
    cfg.llc = CacheGeometry{64 * 1024, 8, 40};
    cfg.inclusion = policy;
    if (policy == InclusionPolicy::Nine && false)
        cfg.hasL2 = false;
    cfg.l1StridePrefetcher = true;
    cfg.l2StreamPrefetcher = true;
    return cfg;
}

struct Driver
{
    explicit Driver(const SimConfig &cfg) : h(cfg), rng(2024) {}

    void
    step(Cycle t)
    {
        Addr a = (rng.below(4096)) * 64; // 256 KB address pool
        switch (rng.below(8)) {
          case 0:
          case 1:
          case 2:
            h.load(0, 0x400000 + rng.below(64) * 4, a, t);
            break;
          case 3:
            h.storeCommit(0, a, t);
            break;
          case 4:
            h.codeFetch(0, 0x400000 + rng.below(512) * 64, t);
            break;
          case 5:
            h.prefetchToL1(0, a, t, CacheHierarchy::PfKind::TactData);
            break;
          case 6:
            h.prefetchToL1(0, a, t, CacheHierarchy::PfKind::Stride);
            break;
          default:
            h.inL2OrLlc(0, a);
            h.probeDataReady(0, a, t);
            break;
        }
    }

    /** One functional-warming access from the same address pool, so
     *  warm and demand traffic fight over the same sets. */
    void
    warmStep(Cycle t)
    {
        Addr a = (rng.below(4096)) * 64;
        switch (rng.below(4)) {
          case 0:
          case 1:
            h.warmAccess(0, 0x400000 + rng.below(64) * 4, a, t,
                         CacheHierarchy::WarmKind::Load);
            break;
          case 2:
            h.warmAccess(0, 0x400000 + rng.below(64) * 4, a, t,
                         CacheHierarchy::WarmKind::Store);
            break;
          default:
            if (rng.below(2))
                h.warmAccess(0, 0, 0x400000 + rng.below(512) * 64, t,
                             CacheHierarchy::WarmKind::Code);
            else
                h.warmTactPrefetch(0, a, false, t);
            break;
        }
    }

    CacheHierarchy h;
    Rng rng;
};

class HierarchyInvariants
    : public ::testing::TestWithParam<InclusionPolicy>
{
};

TEST_P(HierarchyInvariants, SurvivesRandomTrafficAndStaysConsistent)
{
    SimConfig cfg = tinyConfig(GetParam());
    if (GetParam() == InclusionPolicy::Nine) {
        cfg.hasL2 = false;
    }
    Driver d(cfg);
    for (Cycle t = 0; t < 60000; ++t)
        d.step(t * 7);

    const auto &stats = d.h.stats();
    // Conservation: every demand load is served exactly once.
    uint64_t served = 0;
    for (int l = 0; l < 4; ++l)
        served += stats.loadHits[l];
    EXPECT_EQ(served, stats.loads);

    // Every level participated.
    EXPECT_GT(stats.loadHits[0], 0u);
    EXPECT_GT(stats.loadHits[3], 0u);
    EXPECT_GT(d.h.llcStats().fills, 0u);
    EXPECT_GT(d.h.dramStats().reads, 0u);
    // Dirty data eventually reaches DRAM.
    EXPECT_GT(d.h.dramStats().writes, 0u);
}

TEST_P(HierarchyInvariants, NoLineIsLostForever)
{
    // After heavy traffic, any address must still be loadable with a
    // bounded latency (nothing gets wedged in an inconsistent state).
    SimConfig cfg = tinyConfig(GetParam());
    if (GetParam() == InclusionPolicy::Nine)
        cfg.hasL2 = false;
    Driver d(cfg);
    for (Cycle t = 0; t < 30000; ++t)
        d.step(t * 7);
    for (int i = 0; i < 256; ++i) {
        Addr a = static_cast<Addr>(d.rng.below(4096)) * 64;
        // Spread the probes in time so DRAM queueing stays realistic.
        MemResult r = d.h.load(0, 0x400000, a,
                               1000000000ULL + i * 500ULL);
        EXPECT_LT(r.latency, 5000u) << "addr " << a;
    }
}

TEST_P(HierarchyInvariants, DeterministicUnderSeed)
{
    SimConfig cfg = tinyConfig(GetParam());
    if (GetParam() == InclusionPolicy::Nine)
        cfg.hasL2 = false;
    Driver d1(cfg), d2(cfg);
    for (Cycle t = 0; t < 20000; ++t) {
        d1.step(t * 7);
        d2.step(t * 7);
    }
    EXPECT_EQ(d1.h.stats().loadHits[0], d2.h.stats().loadHits[0]);
    EXPECT_EQ(d1.h.dramStats().reads, d2.h.dramStats().reads);
    EXPECT_EQ(d1.h.stats().ringTransfers, d2.h.stats().ringTransfers);
}

INSTANTIATE_TEST_SUITE_P(Policies, HierarchyInvariants,
                         ::testing::Values(InclusionPolicy::Exclusive,
                                           InclusionPolicy::Inclusive,
                                           InclusionPolicy::Nine),
                         [](const auto &info) {
                             switch (info.param) {
                               case InclusionPolicy::Exclusive:
                                 return "Exclusive";
                               case InclusionPolicy::Inclusive:
                                 return "Inclusive";
                               default:
                                 return "Nine";
                             }
                         });

/**
 * Exclusive-LLC structural invariant: no line is simultaneously valid
 * in the L2 and the LLC. Checked by probing the whole address pool
 * after (and periodically during) seeded random traffic, across
 * several seeds.
 */
TEST(HierarchyExclusive, NoLineValidInBothL2AndLlc)
{
    for (uint64_t seed : {7u, 1234u, 998877u}) {
        SimConfig cfg = tinyConfig(InclusionPolicy::Exclusive);
        Driver d(cfg);
        d.rng = Rng(seed);
        auto probe_all = [&](Cycle t) {
            for (Addr a = 0; a < 4096; ++a) {
                Addr addr = a * 64;
                EXPECT_FALSE(d.h.residentIn(0, addr, Level::L2) &&
                             d.h.residentIn(0, addr, Level::LLC))
                    << "duplicated line " << std::hex << addr
                    << " (seed " << std::dec << seed << ", t " << t
                    << ")";
            }
        };
        for (Cycle t = 0; t < 40000; ++t) {
            d.step(t * 7);
            if (t % 10000 == 9999)
                probe_all(t);
        }
        probe_all(40000);
    }
}

/**
 * Inclusive-LLC structural invariant: every L2-resident line is also
 * LLC-resident (L2 contents are a subset of the LLC), under the same
 * randomized traffic.
 */
TEST(HierarchyInclusive, L2IsSubsetOfLlc)
{
    for (uint64_t seed : {7u, 1234u, 998877u}) {
        SimConfig cfg = tinyConfig(InclusionPolicy::Inclusive);
        Driver d(cfg);
        d.rng = Rng(seed);
        auto probe_all = [&](Cycle t) {
            for (Addr a = 0; a < 4096; ++a) {
                Addr addr = a * 64;
                EXPECT_FALSE(d.h.residentIn(0, addr, Level::L2) &&
                             !d.h.residentIn(0, addr, Level::LLC))
                    << "inclusion hole at " << std::hex << addr
                    << " (seed " << std::dec << seed << ", t " << t
                    << ")";
            }
        };
        for (Cycle t = 0; t < 40000; ++t) {
            d.step(t * 7);
            if (t % 10000 == 9999)
                probe_all(t);
        }
        probe_all(40000);
    }
}

/**
 * Exclusive-duplication invariant under mixed functional-warming and
 * demand traffic: interleaving warmAccess / warmTactPrefetch with the
 * demand paths (the exact mix a sampled run produces at every
 * warm-to-detailed transition) must never leave a line valid in both
 * the L2 and the LLC.
 */
TEST(HierarchyExclusive, NoDuplicationUnderMixedWarmAndDemandTraffic)
{
    for (uint64_t seed : {11u, 4242u, 777777u}) {
        SimConfig cfg = tinyConfig(InclusionPolicy::Exclusive);
        Driver d(cfg);
        d.rng = Rng(seed);
        auto probe_all = [&](Cycle t) {
            for (Addr a = 0; a < 4096; ++a) {
                Addr addr = a * 64;
                EXPECT_FALSE(d.h.residentIn(0, addr, Level::L2) &&
                             d.h.residentIn(0, addr, Level::LLC))
                    << "duplicated line " << std::hex << addr
                    << " (seed " << std::dec << seed << ", t " << t
                    << ")";
            }
        };
        // Alternate warm-heavy and demand-heavy phases like a sampled
        // run does, probing at every phase boundary.
        for (Cycle t = 0; t < 40000; ++t) {
            bool warm_phase = (t / 5000) % 2 == 0;
            if (warm_phase ? d.rng.below(4) != 0 : d.rng.below(4) == 0)
                d.warmStep(t * 7);
            else
                d.step(t * 7);
            if (t % 5000 == 4999)
                probe_all(t);
        }
    }
}

/**
 * Inclusive-hole invariant under the same mixed traffic: every
 * L2-resident line stays LLC-resident no matter how warm and demand
 * fills interleave.
 */
TEST(HierarchyInclusive, NoHoleUnderMixedWarmAndDemandTraffic)
{
    for (uint64_t seed : {11u, 4242u, 777777u}) {
        SimConfig cfg = tinyConfig(InclusionPolicy::Inclusive);
        Driver d(cfg);
        d.rng = Rng(seed);
        auto probe_all = [&](Cycle t) {
            for (Addr a = 0; a < 4096; ++a) {
                Addr addr = a * 64;
                EXPECT_FALSE(d.h.residentIn(0, addr, Level::L2) &&
                             !d.h.residentIn(0, addr, Level::LLC))
                    << "inclusion hole at " << std::hex << addr
                    << " (seed " << std::dec << seed << ", t " << t
                    << ")";
            }
        };
        for (Cycle t = 0; t < 40000; ++t) {
            bool warm_phase = (t / 5000) % 2 == 0;
            if (warm_phase ? d.rng.below(4) != 0 : d.rng.below(4) == 0)
                d.warmStep(t * 7);
            else
                d.step(t * 7);
            if (t % 5000 == 4999)
                probe_all(t);
        }
    }
}

/** Exclusive-specific: an L2 hit must not also be LLC-resident after
 *  the hierarchy settles (no silent duplication). */
TEST(HierarchyExclusive, NoSteadyStateDuplication)
{
    SimConfig cfg = tinyConfig(InclusionPolicy::Exclusive);
    cfg.l1StridePrefetcher = false;
    cfg.l2StreamPrefetcher = false;
    CacheHierarchy h(cfg);
    // Touch a handful of lines repeatedly: they live in L1/L2; the LLC
    // holds only victims. Duplication would show as LLC fills >> L2
    // evictions.
    for (int round = 0; round < 50; ++round)
        for (Addr a = 0; a < 16; ++a)
            h.load(0, 0x400000, 0x10000 + a * 64, round * 1000 + a);
    EXPECT_LE(h.llcStats().fills, h.l2Stats(0)->evictions + 1);
}

} // namespace
} // namespace catchsim
