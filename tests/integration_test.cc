/**
 * @file
 * End-to-end integration tests: the paper's headline qualitative claims
 * must hold on representative workloads, and the full CATCH machinery
 * must compose correctly across modules. These are the "shape"
 * assertions the benches print tables for.
 */

#include <gtest/gtest.h>

#include "sim/configs.hh"
#include "sim/simulator.hh"

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 120000;
constexpr uint64_t kWarm = 40000;

double
ipcOf(const SimConfig &cfg, const std::string &wl)
{
    return runWorkload(cfg, wl, kInstr, kWarm).ipc;
}

TEST(Integration, HmmerLosesWithoutL2AndCatchRecovers)
{
    // The paper's flagship per-workload claim (Fig 12): hmmer loses
    // heavily without the L2; CATCH brings it back to (at least) near
    // baseline.
    double base = ipcOf(baselineSkx(), "hmmer");
    double no_l2 = ipcOf(noL2(baselineSkx(), 6656), "hmmer");
    double catch2 = ipcOf(withCatch(noL2(baselineSkx(), 9728)), "hmmer");
    EXPECT_LT(no_l2 / base, 0.80);
    EXPECT_GT(catch2 / base, 0.95);
}

TEST(Integration, McfGainsFromFeeder)
{
    // Fig 12: TACT-Feeder lifts mcf far above baseline.
    double base = ipcOf(baselineSkx(), "mcf");
    double catch3 = ipcOf(withCatch(baselineSkx()), "mcf");
    EXPECT_GT(catch3 / base, 1.25);
}

TEST(Integration, UnprefetchableChaseIsNotRecovered)
{
    // namd/gromacs: the pure chase cannot be covered by TACT.
    double base = ipcOf(baselineSkx(), "namd");
    double no_l2 = ipcOf(noL2(baselineSkx(), 9728), "namd");
    double catch2 = ipcOf(withCatch(noL2(baselineSkx(), 9728)), "namd");
    EXPECT_LT(no_l2 / base, 0.95);
    EXPECT_LT(catch2 / base, 1.02); // no magic recovery
}

TEST(Integration, CatchNeverTanksABaselineWorkload)
{
    // CATCH on the three-level baseline must not regress any of these
    // representative workloads by more than a few percent.
    for (const char *wl : {"hmmer", "mcf", "milc", "tpcc", "omnetpp",
                           "hplinpack", "sysmark-excel"}) {
        double base = ipcOf(baselineSkx(), wl);
        double c = ipcOf(withCatch(baselineSkx()), wl);
        EXPECT_GT(c / base, 0.96) << wl;
    }
}

TEST(Integration, ServerCodeMissesRecoveredByTactCode)
{
    // Server workloads lose front-end cycles without the L2; TACT-Code
    // must claw a large share back.
    SimConfig no_l2 = noL2(baselineSkx(), 9728);
    SimConfig code_only = no_l2;
    code_only.criticality.enabled = true;
    code_only.tact.code = true;
    SimResult plain = runWorkload(no_l2, "tpcc", kInstr, kWarm);
    SimResult with_code = runWorkload(code_only, "tpcc", kInstr, kWarm);
    EXPECT_LT(with_code.frontend.codeStallCycles,
              plain.frontend.codeStallCycles);
    EXPECT_GE(with_code.ipc, plain.ipc);
}

TEST(Integration, TactTimelinessMostlySavesLlcLatency)
{
    // Fig 11's shape: most useful TACT prefetches save most of the LLC
    // latency.
    SimResult r = runWorkload(withCatch(noL2(baselineSkx(), 9728)),
                              "hmmer", kInstr, kWarm);
    EXPECT_GT(r.hier.tactUsefulHits, 100u);
    EXPECT_GT(r.timelinessAtLeast10, 0.70);
}

TEST(Integration, CriticalTableStaysSmall)
{
    // Section VI-D2: 32 tracked PCs suffice; the detector must settle on
    // a handful of saturated PCs, not churn.
    SimResult r = runWorkload(withCatch(baselineSkx()), "hmmer", kInstr,
                              kWarm);
    EXPECT_GT(r.activeCriticalPcs, 0u);
    EXPECT_LE(r.activeCriticalPcs, 32u);
}

TEST(Integration, DemotingNonCriticalL2HitsIsNearlyFree)
{
    // Fig 4's key asymmetry on an L2-heavy workload.
    SimConfig all = baselineSkx();
    all.oracle.demote = DemoteMode::L2ToLlcAll;
    SimConfig noncrit = baselineSkx();
    noncrit.oracle.demote = DemoteMode::L2ToLlcNonCrit;
    noncrit.criticality.enabled = true;
    double base = ipcOf(baselineSkx(), "hmmer");
    double d_all = ipcOf(all, "hmmer");
    double d_nc = ipcOf(noncrit, "hmmer");
    EXPECT_LT(d_all / base, 0.95);       // demoting everything hurts
    EXPECT_GT(d_nc, d_all);              // criticality softens the blow
}

TEST(Integration, InclusiveBaselineAlsoBenefits)
{
    // Fig 17: CATCH helps the 256KB-L2 inclusive hierarchy too.
    double base = ipcOf(baselineClient(), "hmmer");
    double c = ipcOf(withCatch(baselineClient()), "hmmer");
    EXPECT_GT(c / base, 1.0);
}

TEST(Integration, EnergyCountersConsistent)
{
    SimResult r = runWorkload(withCatch(noL2(baselineSkx(), 9728)),
                              "milc", kInstr, kWarm);
    EXPECT_GT(r.energy.cacheDynamic, 0.0);
    EXPECT_GT(r.energy.staticLeakage, 0.0);
    EXPECT_GT(r.hier.ringTransfers, 0u);
}

} // namespace
} // namespace catchsim
