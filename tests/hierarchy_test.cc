/**
 * @file
 * Tests for the cache hierarchy: inclusion policies, latency ordering,
 * MSHR-merge accounting, writeback motion, oracle knobs and prefetch
 * entry points.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "sim/configs.hh"

namespace catchsim
{
namespace
{

SimConfig
threeLevel()
{
    SimConfig cfg = baselineSkx();
    cfg.l1StridePrefetcher = false;
    cfg.l2StreamPrefetcher = false;
    return cfg;
}

SimConfig
twoLevel()
{
    SimConfig cfg = noL2(baselineSkx(), 6656);
    cfg.l1StridePrefetcher = false;
    cfg.l2StreamPrefetcher = false;
    return cfg;
}

TEST(Hierarchy, LatencyOrdering)
{
    CacheHierarchy h(threeLevel());
    const Addr a = 0x12340;
    MemResult mem = h.load(0, 0x400000, a, 1000);
    EXPECT_EQ(mem.served, Level::Mem);
    MemResult l1 = h.load(0, 0x400000, a, 100000);
    EXPECT_EQ(l1.served, Level::L1);
    EXPECT_GT(mem.latency, l1.latency);
    EXPECT_EQ(l1.latency, 5u);
}

TEST(Hierarchy, ExclusiveLlcHoldsOnlyVictims)
{
    SimConfig cfg = threeLevel();
    CacheHierarchy h(cfg);
    const Addr a = 0x40000;
    h.load(0, 0x400000, a, 0); // miss to memory: fills L1+L2, not LLC
    EXPECT_FALSE(h.inL2OrLlc(0, a) == false); // it is in the L2
    // Evict it from the L2 by filling many lines of the same L2 set.
    // L2: 1 MB 16-way -> 1024 sets; same-set stride = 1024*64.
    for (uint32_t i = 1; i <= 20; ++i)
        h.load(0, 0x400000, a + i * 1024 * 64, 10000 + i * 1000);
    // The line must now live in the LLC (moved as an L2 victim).
    MemResult r = h.load(0, 0x400000, a, 1000000);
    EXPECT_EQ(r.served, Level::LLC);
}

TEST(Hierarchy, ExclusiveLlcHitDeallocates)
{
    SimConfig cfg = threeLevel();
    CacheHierarchy h(cfg);
    const Addr a = 0x40000;
    h.load(0, 0x400000, a, 0);
    for (uint32_t i = 1; i <= 20; ++i)
        h.load(0, 0x400000, a + i * 1024 * 64, 100000 + i * 1000);
    uint64_t inval_before = h.llcStats().invalidations;
    MemResult r = h.load(0, 0x400000, a, 1000000);
    ASSERT_EQ(r.served, Level::LLC);
    EXPECT_GT(h.llcStats().invalidations, inval_before);
}

TEST(Hierarchy, InclusiveBackInvalidation)
{
    SimConfig cfg = baselineClient();
    cfg.l1StridePrefetcher = false;
    cfg.l2StreamPrefetcher = false;
    // Shrink the LLC so we can force evictions cheaply: 16 sets x 16 way.
    cfg.llc = CacheGeometry{16 * 16 * 64, 16, 40};
    cfg.l2 = CacheGeometry{8 * 8 * 64, 8, 12};
    CacheHierarchy h(cfg);
    const Addr a = 0x100000;
    h.load(0, 0x400000, a, 0);
    ASSERT_NE(h.load(0, 0x400000, a, 100000).served, Level::Mem);
    // Thrash the LLC set of `a` (same set stride = sets*64 = 1024).
    for (uint32_t i = 1; i <= 40; ++i)
        h.load(0, 0x400000, a + i * 1024, 200000 + i * 500);
    // Back-invalidation must have removed the L1/L2 copies with the LLC
    // line, so the next access goes to memory.
    MemResult r = h.load(0, 0x400000, a, 10000000);
    EXPECT_EQ(r.served, Level::Mem);
}

TEST(Hierarchy, InflightHitReportsFillLevel)
{
    CacheHierarchy h(threeLevel());
    const Addr a = 0x770000;
    h.load(0, 0x400000, a, 1000);
    // Immediately after the miss the line is in flight; the "L1 hit"
    // reports the memory level and pays the remaining time.
    MemResult r = h.load(0, 0x400000, a, 1001);
    EXPECT_EQ(r.served, Level::Mem);
    EXPECT_GT(r.latency, 5u);
    // Long after, it is a plain L1 hit.
    EXPECT_EQ(h.load(0, 0x400000, a, 1000000).served, Level::L1);
}

TEST(Hierarchy, StoreCommitMakesLineDirtyAndWritebacksReachDram)
{
    SimConfig cfg = twoLevel();
    // Tiny L1 so victims churn: 2 sets x 2 ways.
    cfg.l1d = CacheGeometry{256, 2, 5};
    CacheHierarchy h(cfg);
    for (uint32_t i = 0; i < 64; ++i)
        h.storeCommit(0, 0x200000 + i * 64, i * 100);
    // Dirty L1 victims must have moved into the LLC.
    EXPECT_GT(h.llcStats().fills, 0u);
    EXPECT_GT(h.stats().storeL1Misses, 0u);
}

TEST(Hierarchy, CodeFetchFillsL1i)
{
    CacheHierarchy h(threeLevel());
    MemResult m = h.codeFetch(0, 0x400000, 0);
    EXPECT_EQ(m.served, Level::Mem);
    MemResult hgain = h.codeFetch(0, 0x400000, 100000);
    EXPECT_EQ(hgain.served, Level::L1);
    EXPECT_EQ(h.l1iStats(0).demandHits, 1u);
}

TEST(Hierarchy, LatencyAdders)
{
    SimConfig cfg = threeLevel();
    cfg.oracle.latAddLlc = 12;
    CacheHierarchy base(threeLevel());
    CacheHierarchy slow(cfg);
    const Addr a = 0x40000;
    // Put the line into the LLC on both (via L2-set thrash).
    for (auto *h : {&base, &slow}) {
        h->load(0, 0x400000, a, 0);
        for (uint32_t i = 1; i <= 20; ++i)
            h->load(0, 0x400000, a + i * 1024 * 64, 100000 + i * 1000);
    }
    uint64_t lb = base.load(0, 0x400000, a, 10000000).latency;
    uint64_t ls = slow.load(0, 0x400000, a, 10000000).latency;
    EXPECT_EQ(ls, lb + 12);
}

TEST(Hierarchy, DemoteAllL1Hits)
{
    SimConfig cfg = threeLevel();
    cfg.oracle.demote = DemoteMode::L1ToL2All;
    CacheHierarchy h(cfg);
    const Addr a = 0x999940;
    h.load(0, 0x400000, a, 0);
    MemResult r = h.load(0, 0x400000, a, 1000000);
    EXPECT_EQ(r.served, Level::L1);
    EXPECT_EQ(r.latency, cfg.l2.latency);
    EXPECT_EQ(h.stats().demotedLoads, 1u);
}

TEST(Hierarchy, OraclePrefetchConvertsL2Hit)
{
    SimConfig cfg = threeLevel();
    cfg.oracle.oraclePrefetch = true; // all-PC variant
    CacheHierarchy h(cfg);
    const Addr a = 0x5550c0;
    h.load(0, 0x400000, a, 0);
    // Evict from L1 only (fill the L1 set), keeping the L2 copy.
    for (uint32_t i = 1; i <= 10; ++i)
        h.load(0, 0x400000, a + i * 64 * 64, 100000 + 1000 * i);
    MemResult r = h.load(0, 0x400000, a, 10000000);
    EXPECT_EQ(r.served, Level::L1);
    EXPECT_EQ(r.latency, 5u);
    EXPECT_GT(h.stats().oracleConverted, 0u);
}

TEST(Hierarchy, TactPrefetchMovesLineToL1)
{
    CacheHierarchy h(threeLevel());
    const Addr a = 0x31000;
    h.load(0, 0x400000, a, 0); // now in L1+L2
    // Evict from L1.
    for (uint32_t i = 1; i <= 10; ++i)
        h.load(0, 0x400000, a + i * 64 * 64, 100000 + 1000 * i);
    Level from = h.prefetchToL1(0, a, 10000000,
                               CacheHierarchy::PfKind::TactData);
    EXPECT_EQ(from, Level::L2);
    MemResult r = h.load(0, 0x400000, a, 20000000);
    EXPECT_EQ(r.served, Level::L1);
    EXPECT_TRUE(r.tactCovered);
    EXPECT_EQ(h.stats().tactUsefulHits, 1u);
}

TEST(Hierarchy, TactCodePrefetchDroppedWhenOffDie)
{
    CacheHierarchy h(threeLevel());
    Level from = h.prefetchToL1(0, 0xabc000, 0,
                                CacheHierarchy::PfKind::TactCode);
    EXPECT_EQ(from, Level::None);
    EXPECT_GT(h.stats().tactPfNotOnDie, 0u);
}

TEST(Hierarchy, TactPrefetchDroppedWhenL1Resident)
{
    CacheHierarchy h(threeLevel());
    const Addr a = 0x31000;
    h.load(0, 0x400000, a, 0);
    Level from = h.prefetchToL1(0, a, 100000,
                               CacheHierarchy::PfKind::TactData);
    EXPECT_EQ(from, Level::None);
    EXPECT_EQ(h.stats().tactPfDropped, 1u);
}

TEST(Hierarchy, RingTrafficCountsLlcTransfers)
{
    CacheHierarchy h(threeLevel());
    uint64_t before = h.stats().ringTransfers;
    h.load(0, 0x400000, 0x123400, 0); // miss to memory crosses the ring
    EXPECT_GT(h.stats().ringTransfers, before);
}

TEST(Hierarchy, TwoLevelHasMoreRingTrafficPerMiss)
{
    // The paper's Section VI-E example: without the L2 every L1 miss
    // crosses the interconnect.
    CacheHierarchy three(threeLevel());
    CacheHierarchy two(twoLevel());
    for (uint32_t i = 0; i < 100; ++i) {
        Addr a = 0x700000 + (i % 4) * 64; // 4 hot lines
        three.load(0, 0x400000, a, i * 10);
        two.load(0, 0x400000, a, i * 10);
    }
    // Warm lines: three-level keeps them in L1/L2 (no ring); identical
    // here. Now force L1 misses that hit L2 (three-level) vs LLC (two).
    for (uint32_t i = 0; i < 50; ++i) {
        Addr a = 0x800000 + i * 64 * 64;
        three.load(0, 0x400000, a, 100000 + i * 100);
        two.load(0, 0x400000, a, 100000 + i * 100);
    }
    EXPECT_GE(two.stats().ringTransfers, three.stats().ringTransfers);
}

TEST(Hierarchy, ProbeDataReadyDoesNotChangeState)
{
    CacheHierarchy h(threeLevel());
    uint64_t fills = h.llcStats().fills + h.l1dStats(0).fills;
    Cycle t = h.probeDataReady(0, 0x9990c0, 1000);
    EXPECT_GT(t, 1000u);
    EXPECT_EQ(h.llcStats().fills + h.l1dStats(0).fills, fills);
}

TEST(Hierarchy, ResetStatsClearsEverything)
{
    CacheHierarchy h(threeLevel());
    h.load(0, 0x400000, 0x100c0, 0);
    h.resetStats();
    EXPECT_EQ(h.stats().loads, 0u);
    EXPECT_EQ(h.l1dStats(0).demandAccesses, 0u);
    EXPECT_EQ(h.dramStats().reads, 0u);
}

} // namespace
} // namespace catchsim
