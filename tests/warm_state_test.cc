/**
 * @file
 * The warmed-state store's correctness contract, pinned exhaustively:
 *
 *  1. Keying — warmConfigDigest() is invariant under every pure timing
 *     knob (that invariance is the whole speedup story: latency
 *     resweeps share snapshots) and sensitive to every warming-visible
 *     knob; snapshot blobs are a pure function of the key.
 *  2. Equivalence — full sampled campaigns are bitwise-identical with
 *     the store disabled, cold, warm, disk-backed or eviction-
 *     thrashing, at jobs 1/8/16. The store may only ever be a speed
 *     lever, never a correctness hazard; detailed mode and ineligible
 *     runs never consult it.
 *  3. LRU mechanics — exact-budget eviction order, find() recency
 *     touches, and the one-resident-snapshot floor.
 *  4. Disk-tier validation — every corruption mode (missing file,
 *     truncation, bit flip, version skew, key mismatch, injected)
 *     surfaces as the documented taxonomy, drops the bad record, and
 *     falls back to re-warming. Never a crash, never silently wrong.
 *  5. Component round trips — every warmed component's save → load →
 *     save is byte-identical through a freshly constructed instance,
 *     so a restore is indistinguishable from the warm it replaced.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/fault_inject.hh"
#include "common/state_io.hh"
#include "core/branch_predictor.hh"
#include "criticality/critical_table.hh"
#include "sim/configs.hh"
#include "sim/fast_forward.hh"
#include "sim/parallel_runner.hh"
#include "sim/warm_state.hh"
#include "sim_result_compare.hh"
#include "tact/tact.hh"
#include "trace/chunk_store.hh"
#include "trace/suite.hh"
#include "trace/trace_io.hh"
#include "trace/trace_stream.hh"

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 20000;
constexpr uint64_t kWarm = 5000;

const FaultPlan kNoFaults;

/** Campaign workloads spanning every suite category. */
std::vector<std::string>
campaignNames()
{
    return {"mcf", "omnetpp", "hmmer", "hplinpack", "tpcc", "gobmk"};
}

/** A synthetic snapshot identity for LRU/disk unit tests. */
WarmStateKey
wkeyAt(uint64_t n)
{
    return WarmStateKey{"mcf", 7, kWarm, kInstr + kWarm,
                        TraceStream::kDefaultChunkOps, 0x1000 + n};
}

/** An arbitrary pseudo-random blob (content only matters on disk). */
std::string
dummyBlob(size_t bytes, uint8_t tag)
{
    std::string blob(bytes, '\0');
    uint64_t x = 0x9e3779b97f4a7c15ULL ^ tag;
    for (size_t i = 0; i < bytes; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        blob[i] = static_cast<char>(x);
    }
    return blob;
}

std::string
freshDir(const std::string &name)
{
    std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

IsolationOptions
optsWithStores(ChunkStore *chunks, WarmStateStore *warm)
{
    IsolationOptions opts;
    opts.plan = &kNoFaults;
    opts.backoffMs = 0;
    opts.store = chunks;
    opts.warmStore = warm;
    return opts;
}

SimConfig
sampledCfg(SimConfig cfg)
{
    cfg.sampling.mode = SampleMode::Sampled;
    cfg.sampling.intervalInstrs = 5000;
    cfg.sampling.windowInstrs = 2000;
    cfg.sampling.warmupInstrs = 2000;
    return cfg;
}

/**
 * Store config with the window-eligibility gates disabled. The test
 * schedule above has a 1000-instruction slack — far below the default
 * minWindowGapInstrs floor, which exists because restoring a window
 * snapshot only pays off against long warming gaps. The functional
 * contract under test (bitwise equivalence, counter attribution,
 * record purity) must hold whenever windows memoize, so these tests
 * opt out of the profitability heuristic.
 */
WarmStateStore::Config
ungatedWindows()
{
    WarmStateStore::Config cfg;
    cfg.minWindowGapInstrs = 0;
    cfg.maxWindowPages = 0;
    return cfg;
}

/** FNV-1a golden over a whole campaign's serialized results. */
uint64_t
campaignHash(const std::vector<RunOutcome> &outcomes)
{
    uint64_t h = 1469598103934665603ULL;
    for (const auto &o : outcomes) {
        EXPECT_TRUE(o.ok()) << o.workload;
        const std::string json = o.result.toJson();
        h = fnv1a(json.data(), json.size(), h);
    }
    return h;
}

// ---------------------- Config digest ----------------------------

TEST(WarmConfigDigest, PureTimingKnobsShareTheDigest)
{
    // The headline property: a latency/bandwidth resweep — the bread
    // and butter of the paper's figures — must map every point onto
    // the same snapshot. Warming stamps fills with readyAt 0 and never
    // advances the clock, so none of these knobs can reach warm state.
    const SimConfig base = withCatch(baselineSkx());
    const uint64_t d = warmConfigDigest(base);

    SimConfig t = base;
    t.l1d.latency = 9;
    t.l2.latency = 30;
    t.llc.latency = 80;
    t.oracle.latAddL1 = 3;
    t.oracle.latAddLlc = 10;
    t.oracle.demote = DemoteMode::L1ToL2All;
    t.width = 2;
    t.robSize = 64;
    t.storeQueueSize = 16;
    t.fwdLatency = 1;
    t.aluPorts = 1;
    t.dram.tCas = 80;
    t.dram.controllerLat = 60;
    t.sampling.intervalInstrs = 777;
    t.sampling.windowInstrs = 333;
    t.name = "renamed";
    EXPECT_EQ(warmConfigDigest(t), d)
        << "a pure timing resweep must share the warmed snapshot";
}

TEST(WarmConfigDigest, WarmingVisibleKnobsReKeyTheDigest)
{
    const SimConfig base = withCatch(baselineSkx());
    const uint64_t d = warmConfigDigest(base);
    // Each mutation can reach tag/replacement/predictor/TACT state
    // during warming, so each must produce a distinct snapshot key.
    std::vector<std::pair<std::string, SimConfig>> variants;
    auto add = [&](const std::string &what, auto &&mutate) {
        SimConfig v = base;
        mutate(v);
        variants.emplace_back(what, v);
    };
    add("seed", [](SimConfig &v) { v.seed += 1; });
    add("llc ways", [](SimConfig &v) { v.llc.ways = 8; });
    add("l2 size", [](SimConfig &v) { v.l2.sizeBytes /= 2; });
    add("inclusion", [](SimConfig &v) {
        v.inclusion = InclusionPolicy::Inclusive;
    });
    add("stride prefetcher", [](SimConfig &v) {
        v.l1StridePrefetcher = false;
    });
    add("stream degree", [](SimConfig &v) { v.streamDegree = 2; });
    add("criticality table", [](SimConfig &v) {
        v.criticality.tableEntries *= 2;
    });
    add("tact cross", [](SimConfig &v) { v.tact.cross = false; });
    add("tact feeder depth", [](SimConfig &v) { v.tact.feederDepth += 1; });
    add("oracle prefetch", [](SimConfig &v) {
        v.oracle.oraclePrefetch = true;
    });
    for (const auto &[what, v] : variants)
        EXPECT_NE(warmConfigDigest(v), d) << what;
}

// ----------------------- LRU mechanics ---------------------------

TEST(WarmStateLru, FindMissesColdThenHitsAfterPut)
{
    WarmStateStore store;
    WarmStateKey key = wkeyAt(0);
    EXPECT_EQ(store.find(key), nullptr);
    auto put = store.put(key, dummyBlob(256, 1));
    ASSERT_NE(put, nullptr);
    auto hit = store.find(key);
    EXPECT_EQ(hit, put) << "the resident blob is shared, not copied";
    auto s = store.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.puts, 1u);
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(store.residentBytes(), 256u);
}

TEST(WarmStateLru, FirstWriterWinsOnDuplicatePut)
{
    WarmStateStore store;
    WarmStateKey key = wkeyAt(0);
    auto first = store.put(key, dummyBlob(256, 1));
    auto second = store.put(key, dummyBlob(256, 1));
    EXPECT_EQ(first, second);
    EXPECT_EQ(store.stats().puts, 1u)
        << "duplicates are not re-published";
    EXPECT_EQ(store.residentBytes(), 256u);
}

TEST(WarmStateLru, EvictsLeastRecentlyUsedAtExactBudget)
{
    constexpr size_t blob_bytes = 256;
    WarmStateStore::Config cfg;
    cfg.memBudgetBytes = 3 * blob_bytes; // exactly three snapshots
    WarmStateStore store(cfg);

    store.put(wkeyAt(0), dummyBlob(blob_bytes, 0));
    store.put(wkeyAt(1), dummyBlob(blob_bytes, 1));
    store.put(wkeyAt(2), dummyBlob(blob_bytes, 2));
    EXPECT_EQ(store.stats().evictions, 0u)
        << "at budget is not over budget";
    EXPECT_EQ(store.residentBytes(), 3 * blob_bytes);

    // Touch snapshot 0: it becomes most-recent, 1 the LRU victim.
    EXPECT_NE(store.find(wkeyAt(0)), nullptr);
    store.put(wkeyAt(3), dummyBlob(blob_bytes, 3));
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_EQ(store.residentBytes(), 3 * blob_bytes);
    EXPECT_EQ(store.find(wkeyAt(1)), nullptr)
        << "the least-recently-used snapshot is the victim";
    EXPECT_NE(store.find(wkeyAt(0)), nullptr);
    EXPECT_NE(store.find(wkeyAt(2)), nullptr);
    EXPECT_NE(store.find(wkeyAt(3)), nullptr);
}

TEST(WarmStateLru, BudgetFloorKeepsTheNewestSnapshotResident)
{
    WarmStateStore::Config cfg;
    cfg.memBudgetBytes = 1; // below a single snapshot
    WarmStateStore store(cfg);
    auto a = store.put(wkeyAt(0), dummyBlob(256, 0));
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(store.residentBytes(), 256u)
        << "never evicted below one resident snapshot";
    auto b = store.put(wkeyAt(1), dummyBlob(256, 1));
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(store.stats().evictions, 1u);
    EXPECT_EQ(store.find(wkeyAt(0)), nullptr);
    // Shared ownership keeps an evicted-then-reheld snapshot valid.
    EXPECT_EQ(a->bytes.size(), 256u);
}

// ------------------------ Disk tier ------------------------------

/** Writes one checksummed record to @p dir and returns its path. */
std::string
writeOneRecord(const std::string &dir, const std::string &blob)
{
    WarmStateStore::Config cfg;
    cfg.diskDir = dir;
    WarmStateStore writer(cfg);
    writer.put(wkeyAt(0), blob);
    return writer.diskPath(wkeyAt(0));
}

void
rewriteFile(const std::string &path, const std::vector<char> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
}

std::vector<char>
readAll(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::fseek(f, 0, SEEK_END);
    std::vector<char> bytes(static_cast<size_t>(std::ftell(f)));
    std::rewind(f);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    return bytes;
}

TEST(WarmStateDisk, RoundTripServesWarmStartAcrossStoreInstances)
{
    const std::string dir = freshDir("warm_state_roundtrip");
    const std::string blob = dummyBlob(4096, 5);
    std::string path = writeOneRecord(dir, blob);
    EXPECT_TRUE(std::filesystem::exists(path));

    WarmStateStore::Config cfg;
    cfg.diskDir = dir;
    WarmStateStore reader(cfg);
    auto loaded = reader.loadDiskChecked(wkeyAt(0));
    ASSERT_TRUE(loaded.ok())
        << (loaded.ok() ? "" : loaded.error().message);
    EXPECT_EQ(loaded.value()->bytes, blob);
    EXPECT_TRUE(loaded.value()->pages.empty());

    auto hit = reader.find(wkeyAt(0));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->bytes, blob);
    auto s = reader.stats();
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.corrupt, 0u);

    // Second find comes from the memory tier.
    ASSERT_NE(reader.find(wkeyAt(0)), nullptr);
    EXPECT_EQ(reader.stats().diskHits, 1u);

    std::filesystem::remove_all(dir);
}

TEST(WarmStateDisk, UnwritableCacheDirDegradesToMemoryTier)
{
    // A path below a regular file cannot be created, even by root.
    const std::string blocker = freshDir("warm_state_blocker");
    rewriteFile(blocker, {'x'});
    WarmStateStore::Config cfg;
    cfg.diskDir = blocker + "/nested/cache";
    WarmStateStore store(cfg);
    EXPECT_TRUE(store.diskDir().empty())
        << "an uncreatable dir disables the disk tier, not the store";
    EXPECT_NE(store.put(wkeyAt(0), dummyBlob(64, 0)), nullptr);
    EXPECT_NE(store.find(wkeyAt(0)), nullptr);
}

TEST(WarmStateDisk, MissingFileIsAPlainMissNotCorruption)
{
    const std::string dir = freshDir("warm_state_missing");
    std::string path = writeOneRecord(dir, dummyBlob(512, 2));
    std::filesystem::remove(path);

    WarmStateStore::Config cfg;
    cfg.diskDir = dir;
    WarmStateStore store(cfg);
    auto loaded = store.loadDiskChecked(wkeyAt(0));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::Config)
        << "absence is a config-level miss, not data corruption";
    EXPECT_EQ(store.find(wkeyAt(0)), nullptr);
    auto s = store.stats();
    EXPECT_EQ(s.corrupt, 0u);
    EXPECT_EQ(s.misses, 1u);
    std::filesystem::remove_all(dir);
}

TEST(WarmStateDisk, TruncatedRecordIsCorruptAndDropped)
{
    const std::string dir = freshDir("warm_state_truncated");
    std::string path = writeOneRecord(dir, dummyBlob(512, 3));
    std::vector<char> bytes = readAll(path);
    // Below even the minimal (empty-payload) record size: the size
    // bound rejects it before any field is parsed. A milder
    // truncation is caught by the whole-record checksum instead —
    // that branch is pinned by the bit-flip test below.
    bytes.resize(10);
    rewriteFile(path, bytes);

    WarmStateStore::Config cfg;
    cfg.diskDir = dir;
    WarmStateStore store(cfg);
    auto loaded = store.loadDiskChecked(wkeyAt(0));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::TraceCorrupt);
    EXPECT_NE(loaded.error().message.find("truncated or foreign"),
              std::string::npos)
        << loaded.error().message;

    EXPECT_EQ(store.find(wkeyAt(0)), nullptr)
        << "corruption reports a miss so the caller re-warms";
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(std::filesystem::exists(path))
        << "the bad record is dropped so the slot can be rewritten";
    std::filesystem::remove_all(dir);
}

TEST(WarmStateDisk, BitFlipFailsTheChecksumAndIsDropped)
{
    const std::string dir = freshDir("warm_state_bitflip");
    std::string path = writeOneRecord(dir, dummyBlob(512, 4));
    std::vector<char> bytes = readAll(path);
    bytes[bytes.size() / 2] ^= 0x40; // one flipped bit mid-payload
    rewriteFile(path, bytes);

    WarmStateStore::Config cfg;
    cfg.diskDir = dir;
    WarmStateStore store(cfg);
    auto loaded = store.loadDiskChecked(wkeyAt(0));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::TraceCorrupt);
    EXPECT_NE(loaded.error().message.find("FNV-1a checksum mismatch"),
              std::string::npos)
        << loaded.error().message;
    EXPECT_EQ(store.find(wkeyAt(0)), nullptr);
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_FALSE(std::filesystem::exists(path));
    std::filesystem::remove_all(dir);
}

TEST(WarmStateDisk, VersionSkewIsCorruptNotMisparsed)
{
    // A record from a future format version must be refused by the
    // version gate, not fed to component loaders. The checksum is
    // recomputed over the doctored bytes so only the version differs.
    const std::string dir = freshDir("warm_state_version");
    std::string path = writeOneRecord(dir, dummyBlob(512, 5));
    std::vector<char> bytes = readAll(path);
    // u32 version sits right after the 6-byte magic.
    uint32_t version = 0;
    std::memcpy(&version, bytes.data() + 6, 4);
    ASSERT_EQ(version, kWarmStateFormatVersion);
    version += 1;
    std::memcpy(bytes.data() + 6, &version, 4);
    const uint64_t sum = fnv1a(bytes.data(), bytes.size() - 8);
    std::memcpy(bytes.data() + bytes.size() - 8, &sum, 8);
    rewriteFile(path, bytes);

    WarmStateStore::Config cfg;
    cfg.diskDir = dir;
    WarmStateStore store(cfg);
    auto loaded = store.loadDiskChecked(wkeyAt(0));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::TraceCorrupt);
    EXPECT_NE(loaded.error().message.find("unsupported version"),
              std::string::npos)
        << loaded.error().message;
    EXPECT_EQ(store.find(wkeyAt(0)), nullptr);
    EXPECT_EQ(store.stats().corrupt, 1u);
    std::filesystem::remove_all(dir);
}

TEST(WarmStateDisk, ForeignRecordAtTheWrongPathFailsTheKeyCheck)
{
    // A checksum-valid record renamed onto another key's path must be
    // rejected by the header/key cross-check, never restored as the
    // wrong warmed state.
    const std::string dir = freshDir("warm_state_foreign");
    std::string path0 = writeOneRecord(dir, dummyBlob(512, 6));

    WarmStateStore::Config cfg;
    cfg.diskDir = dir;
    WarmStateStore store(cfg);
    std::string path1 = store.diskPath(wkeyAt(1));
    std::filesystem::rename(path0, path1);

    auto loaded = store.loadDiskChecked(wkeyAt(1));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::TraceCorrupt);
    EXPECT_NE(
        loaded.error().message.find("does not match the requested key"),
        std::string::npos)
        << loaded.error().message;
    EXPECT_EQ(store.find(wkeyAt(1)), nullptr);
    EXPECT_EQ(store.stats().corrupt, 1u);
    std::filesystem::remove_all(dir);
}

TEST(WarmStateDisk, InjectedStateCorruptFaultTaxonomy)
{
    // The reserved "warm-state-store" injection target corrupts every
    // disk read deterministically; the taxonomy must be trace-corrupt.
    auto parsed = FaultPlan::parse("state-corrupt:warm-state-store");
    ASSERT_TRUE(parsed.ok());
    FaultPlan plan = std::move(parsed).value();
    const std::string dir = freshDir("warm_state_inject_taxonomy");
    std::string path = writeOneRecord(dir, dummyBlob(512, 7));
    ASSERT_TRUE(std::filesystem::exists(path));

    WarmStateStore::Config cfg;
    cfg.diskDir = dir;
    cfg.plan = &plan;
    WarmStateStore store(cfg);
    auto loaded = store.loadDiskChecked(wkeyAt(0));
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().category, ErrorCategory::TraceCorrupt);
    EXPECT_NE(loaded.error().message.find("injected"), std::string::npos);
    std::filesystem::remove_all(dir);
}

// -------------------- Component round trips ----------------------

/**
 * save → load into a fresh instance → save must be byte-identical:
 * with that, a restored component is indistinguishable from the
 * warmed one it replaced, by induction over any later work.
 */
template <typename Warmed, typename Fresh>
void
expectRoundTrip(const Warmed &warmed, Fresh &fresh,
                const std::string &what)
{
    StateSink a;
    warmed.saveWarmState(a);
    EXPECT_GT(a.size(), 0u) << what;
    StateSource src(a.bytes());
    ASSERT_TRUE(fresh.loadWarmState(src)) << what;
    EXPECT_TRUE(src.exhausted())
        << what << ": loader must consume its whole section";
    StateSink b;
    fresh.saveWarmState(b);
    EXPECT_EQ(a.bytes(), b.bytes()) << what;
}

TEST(WarmStateComponents, EveryWarmedComponentRoundTripsByteIdentical)
{
    // A real warming pass over the full CATCH rig (store-backed
    // stream, criticality query wired into the hierarchy, TACT in
    // warming mode) leaves every component with nontrivial state; each
    // must then survive save → load → save bit-for-bit.
    const size_t total = kInstr + kWarm;
    SimConfig cfg = withCatch(baselineSkx());
    ChunkStore chunks;

    auto wl = makeWorkload("mcf");
    TraceStream stream(*wl, total, TraceStream::kDefaultChunkOps,
                       std::function<double()>(), &chunks);
    CacheHierarchy hierarchy(cfg);
    BranchPredictor predictor;
    CriticalTable table(cfg.criticality);
    hierarchy.setCriticalQuery(
        [&table](CoreId, Addr pc) { return table.isCritical(pc); });
    Tact tact(cfg.tact, 0, hierarchy,
              [&table](Addr pc) { return table.isCritical(pc); },
              stream.mem().get());
    tact.setWarming(true);
    FastForward ff(0, hierarchy, predictor, &tact);
    ff.bind(stream);

    // Seed the critical table so entries span confidence levels and
    // the warm pass sees live critical PCs through the query hook.
    for (int rep = 0; rep < 3; ++rep)
        for (Addr pc = 0x400000; pc < 0x400000 + 40 * 4; pc += 4)
            if (rep < 1 + static_cast<int>(pc % 3))
                table.record(pc);
    const size_t end = ff.warm(0, kWarm, 0);
    ASSERT_GT(end, 0u);
    table.tick(kWarm);

    // Fresh instances, constructed exactly like a restoring run would.
    auto wl2 = makeWorkload("mcf");
    TraceStream stream2(*wl2, total, TraceStream::kDefaultChunkOps,
                        std::function<double()>(), &chunks);
    CacheHierarchy hierarchy2(cfg);
    BranchPredictor predictor2;
    CriticalTable table2(cfg.criticality);
    Tact tact2(cfg.tact, 0, hierarchy2,
               [&table2](Addr pc) { return table2.isCritical(pc); },
               stream2.mem().get());
    FastForward ff2(0, hierarchy2, predictor2, &tact2);
    ff2.bind(stream2);

    // Snapshot order: the stream first (TACT's feeder reads its
    // functional memory), then the independent components. The stream
    // round-trips in two pieces: the frontier blob through the sink,
    // and the memory as a COW page image the restore adopts.
    {
        StateSink a;
        stream.saveWarmState(a);
        EXPECT_GT(a.size(), 0u) << "TraceStream";
        FunctionalMemory::PageImage pages = stream.mem()->snapshotPages();
        StateSource src(a.bytes());
        ASSERT_TRUE(stream2.loadWarmState(src, pages)) << "TraceStream";
        EXPECT_TRUE(src.exhausted())
            << "TraceStream: loader must consume its whole section";
        StateSink b;
        stream2.saveWarmState(b);
        EXPECT_EQ(a.bytes(), b.bytes()) << "TraceStream";
        // The adopted image serializes identically from both memories:
        // the restore shared pages, it did not reinterpret them.
        StateSink ma, mb;
        FunctionalMemory::savePages(pages, ma);
        FunctionalMemory::savePages(stream2.mem()->snapshotPages(), mb);
        EXPECT_EQ(ma.bytes(), mb.bytes()) << "TraceStream memory image";
    }
    expectRoundTrip(hierarchy, hierarchy2, "CacheHierarchy");
    expectRoundTrip(predictor, predictor2, "BranchPredictor");
    expectRoundTrip(table, table2, "CriticalTable");
    expectRoundTrip(tact, tact2, "Tact");
    expectRoundTrip(ff, ff2, "FastForward");

    // The restored table answers queries identically, stats included.
    EXPECT_EQ(table2.activeCount(), table.activeCount());
    EXPECT_EQ(table2.stats().queries, table.stats().queries);
    EXPECT_EQ(table2.stats().queryHits, table.stats().queryHits);
}

TEST(WarmStateComponents, GeometryMismatchRefusesTheLoad)
{
    // A snapshot taken from a differently shaped table must be refused
    // by the loader, not reinterpreted — the digest makes this key
    // collision impossible in production, but the loader is the last
    // line of defense against a format bug.
    SimConfig cfg = withCatch(baselineSkx());
    CriticalTable small(cfg.criticality);
    small.record(0x400000);
    StateSink sink;
    small.saveWarmState(sink);

    CriticalityConfig big_cfg = cfg.criticality;
    big_cfg.tableEntries *= 2;
    CriticalTable big(big_cfg);
    StateSource src(sink.bytes());
    EXPECT_FALSE(big.loadWarmState(src))
        << "a mis-sized snapshot must be rejected, not reinterpreted";
}

TEST(WarmStateComponents, SnapshotBlobIsAPureFunctionOfTheKey)
{
    // Two independent cold runs in separate processes-worth of state
    // must publish byte-identical records at the same deterministic
    // paths — the property that makes sharing a disk tier across
    // machines and runs sound. With per-window keys a single sampled
    // run publishes the global-warmup snapshot plus one record per
    // inter-window gap; every one of them must reproduce.
    SimConfig cfg = sampledCfg(withCatch(baselineSkx()));
    const std::vector<std::string> names = {"mcf"};
    std::vector<std::string> dirs;
    for (int rep = 0; rep < 2; ++rep) {
        const std::string dir =
            freshDir("warm_state_pure_" + std::to_string(rep));
        ChunkStore chunks;
        WarmStateStore::Config store_cfg = ungatedWindows();
        store_cfg.diskDir = dir;
        WarmStateStore warm(store_cfg);
        auto out = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                        optsWithStores(&chunks, &warm));
        ASSERT_TRUE(out[0].ok());
        EXPECT_GE(warm.stats().puts, 2u)
            << "expected the global snapshot plus window boundaries";
        dirs.push_back(dir);
    }
    std::vector<std::vector<std::filesystem::path>> records;
    for (const auto &dir : dirs) {
        std::vector<std::filesystem::path> files;
        for (const auto &e : std::filesystem::directory_iterator(dir))
            files.push_back(e.path());
        std::sort(files.begin(), files.end());
        ASSERT_GE(files.size(), 2u) << dir;
        records.push_back(std::move(files));
    }
    ASSERT_EQ(records[0].size(), records[1].size())
        << "both runs must publish the same snapshot set";
    for (size_t i = 0; i < records[0].size(); ++i) {
        EXPECT_EQ(records[0][i].filename(), records[1][i].filename())
            << "the record path is part of the deterministic contract";
        EXPECT_EQ(readAll(records[0][i]), readAll(records[1][i]))
            << records[0][i].filename()
            << ": independent warms must serialize bitwise-identical "
               "state";
    }
    for (const auto &dir : dirs)
        std::filesystem::remove_all(dir);
}

// ------------------ Campaign equivalence -------------------------

/**
 * The acceptance matrix: one fault-free baseline without stores, then
 * every warm-store state at every job count must hash to the same
 * campaign golden and compare bitwise-equal slot by slot.
 */
void
expectWarmStateEquivalence(const SimConfig &cfg)
{
    const std::vector<std::string> names = campaignNames();
    auto baseline = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                         optsWithStores(nullptr, nullptr));
    const uint64_t golden = campaignHash(baseline);

    const std::string dir =
        freshDir(std::string("warm_state_equiv_") + cfg.name);
    ChunkStore chunks; // warm-state eligibility needs a store-backed stream
    WarmStateStore::Config disk_cfg = ungatedWindows();
    disk_cfg.diskDir = dir;
    WarmStateStore warm(disk_cfg); // shared across job counts: stays warm
    WarmStateStore::Config tiny_cfg = ungatedWindows();
    tiny_cfg.memBudgetBytes = 1; // evicts after every insertion
    WarmStateStore evicting(tiny_cfg);

    for (unsigned jobs : {1u, 8u, 16u}) {
        SCOPED_TRACE(cfg.name + " jobs=" + std::to_string(jobs));

        auto off = runWorkloadsIsolated(cfg, names, kInstr, kWarm, jobs,
                                        optsWithStores(&chunks, nullptr));
        EXPECT_EQ(campaignHash(off), golden);

        WarmStateStore cold(ungatedWindows());
        auto with_cold =
            runWorkloadsIsolated(cfg, names, kInstr, kWarm, jobs,
                                 optsWithStores(&chunks, &cold));
        EXPECT_EQ(campaignHash(with_cold), golden);
        EXPECT_GT(cold.stats().puts, 0u);

        auto with_warm =
            runWorkloadsIsolated(cfg, names, kInstr, kWarm, jobs,
                                 optsWithStores(&chunks, &warm));
        EXPECT_EQ(campaignHash(with_warm), golden);

        auto thrash =
            runWorkloadsIsolated(cfg, names, kInstr, kWarm, jobs,
                                 optsWithStores(&chunks, &evicting));
        EXPECT_EQ(campaignHash(thrash), golden);

        for (size_t i = 0; i < names.size(); ++i) {
            expectBitwiseEqual(with_cold[i].result, baseline[i].result);
            expectBitwiseEqual(with_warm[i].result, baseline[i].result);
            expectBitwiseEqual(thrash[i].result, baseline[i].result);
        }
    }
    EXPECT_GT(warm.stats().hits, 0u) << "the warm store actually served";
    EXPECT_GT(evicting.stats().evictions, 0u)
        << "the tiny store actually thrashed";

    // A fresh store over the same dir starts with an empty memory
    // tier, so this pass proves the disk records themselves restore
    // to the same campaign golden.
    WarmStateStore reader(disk_cfg);
    auto from_disk = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 8,
                                          optsWithStores(&chunks, &reader));
    EXPECT_EQ(campaignHash(from_disk), golden);
    EXPECT_GT(reader.stats().diskHits, 0u)
        << "the disk tier actually served";
    EXPECT_EQ(reader.stats().corrupt, 0u);
    std::filesystem::remove_all(dir);
}

TEST(WarmStateEquivalence, SampledBaselineCampaigns)
{
    expectWarmStateEquivalence(sampledCfg(baselineSkx()));
}

TEST(WarmStateEquivalence, SampledCatchCampaigns)
{
    // The CATCH config warms the criticality table and every TACT
    // learner — the full snapshot surface.
    expectWarmStateEquivalence(sampledCfg(withCatch(baselineSkx())));
}

TEST(WarmStateEquivalence, IneligibleRunsNeverConsultTheStore)
{
    // Detailed mode has no warming boundary; a run without a chunk
    // store cannot restore its stream; a zero-warmup run has nothing
    // to memoize. Each must leave the store completely untouched.
    const std::vector<std::string> names = {"mcf"};
    ChunkStore chunks;
    WarmStateStore store;

    SimConfig detailed = withCatch(baselineSkx());
    auto d = runWorkloadsIsolated(detailed, names, kInstr, kWarm, 1,
                                  optsWithStores(&chunks, &store));
    ASSERT_TRUE(d[0].ok());

    SimConfig sampled = sampledCfg(withCatch(baselineSkx()));
    auto no_chunks = runWorkloadsIsolated(sampled, names, kInstr, kWarm,
                                          1,
                                          optsWithStores(nullptr, &store));
    ASSERT_TRUE(no_chunks[0].ok());

    auto no_warmup = runWorkloadsIsolated(sampled, names, kInstr, 0, 1,
                                          optsWithStores(&chunks, &store));
    ASSERT_TRUE(no_warmup[0].ok());

    auto s = store.stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.misses, 0u);
    EXPECT_EQ(s.puts, 0u);
}

TEST(WarmStateEquivalence, PerRunProfileCountersAttributeHitsAndMisses)
{
    // The profile counters are per-run, never campaign-cumulative: a
    // cold run then a warm run against the same store must report
    // miss-only then hit-only, with the snapshot footprint both times.
    SimConfig cfg = sampledCfg(withCatch(baselineSkx()));
    const std::vector<std::string> names = {"mcf"};
    ChunkStore chunks;
    WarmStateStore store(ungatedWindows());
    IsolationOptions opts = optsWithStores(&chunks, &store);
    opts.profile = true;

    auto cold = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1, opts);
    ASSERT_TRUE(cold[0].ok());
    ASSERT_TRUE(cold[0].profile.has_value());
    EXPECT_EQ(cold[0].profile->warmStateMisses, 1u);
    EXPECT_EQ(cold[0].profile->warmStateHits, 0u);
    EXPECT_GT(cold[0].profile->warmStateBytes, 0u);
    // Window-boundary attribution is split from the global counters:
    // the cold run misses (and publishes) every inter-window gap.
    EXPECT_GT(cold[0].profile->warmStateWindowMisses, 0u);
    EXPECT_EQ(cold[0].profile->warmStateWindowHits, 0u);
    EXPECT_GT(cold[0].profile->warmStateWindowBytes, 0u);

    auto warm = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1, opts);
    ASSERT_TRUE(warm[0].ok());
    ASSERT_TRUE(warm[0].profile.has_value());
    EXPECT_EQ(warm[0].profile->warmStateHits, 1u);
    EXPECT_EQ(warm[0].profile->warmStateMisses, 0u)
        << "a cumulative counter would still show the cold miss";
    EXPECT_EQ(warm[0].profile->warmStateBytes,
              cold[0].profile->warmStateBytes)
        << "hit and miss account the same snapshot";
    EXPECT_EQ(warm[0].profile->warmStateWindowHits,
              cold[0].profile->warmStateWindowMisses)
        << "every gap the cold run published must restore warm";
    EXPECT_EQ(warm[0].profile->warmStateWindowMisses, 0u);
    EXPECT_EQ(warm[0].profile->warmStateWindowBytes,
              cold[0].profile->warmStateWindowBytes);
    expectBitwiseEqual(warm[0].result, cold[0].result);
}

TEST(WarmStateEquivalence, PerWindowOffReproducesPhaseOneBehaviour)
{
    // Config.perWindow = false is the phase-1 store: only the global
    // boundary is consulted, campaigns still hash identical, and no
    // window counters move.
    SimConfig cfg = sampledCfg(withCatch(baselineSkx()));
    const std::vector<std::string> names = {"mcf"};
    ChunkStore chunks;
    auto baseline = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                         optsWithStores(&chunks, nullptr));
    const uint64_t golden = campaignHash(baseline);

    WarmStateStore::Config p1_cfg;
    p1_cfg.perWindow = false;
    WarmStateStore p1(p1_cfg);
    IsolationOptions opts = optsWithStores(&chunks, &p1);
    opts.profile = true;
    for (int rep = 0; rep < 2; ++rep) {
        auto out = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                        opts);
        ASSERT_TRUE(out[0].ok());
        EXPECT_EQ(campaignHash(out), golden);
        ASSERT_TRUE(out[0].profile.has_value());
        EXPECT_EQ(out[0].profile->warmStateWindowHits, 0u);
        EXPECT_EQ(out[0].profile->warmStateWindowMisses, 0u);
        EXPECT_EQ(out[0].profile->warmStateWindowBytes, 0u);
    }
    auto s = p1.stats();
    EXPECT_EQ(s.puts, 1u) << "phase 1 publishes only the global snapshot";
    EXPECT_EQ(s.windowHits, 0u);
    EXPECT_EQ(s.windowMisses, 0u);
}

TEST(WarmStateEquivalence, EligibilityGatesSkipUnprofitableWindows)
{
    // A window restore costs a near-constant blob parse plus an
    // O(pages) map adoption, so it only pays against long warming
    // gaps over modest page maps. Both gates must leave results
    // bitwise-identical — they redirect the simulator to re-warm,
    // which derives the same state — while keeping window records
    // out of the store.
    SimConfig cfg = sampledCfg(withCatch(baselineSkx()));
    const std::vector<std::string> names = {"mcf"};
    ChunkStore chunks;
    auto baseline = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                         optsWithStores(&chunks, nullptr));
    const uint64_t golden = campaignHash(baseline);

    // Default config: the test schedule's 1000-instruction slack is
    // below the minWindowGapInstrs floor, so only the global-warmup
    // snapshot is published — phase-1 behaviour without opting out
    // of perWindow.
    {
        WarmStateStore gated;
        auto out = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                        optsWithStores(&chunks, &gated));
        ASSERT_TRUE(out[0].ok());
        EXPECT_EQ(campaignHash(out), golden);
        EXPECT_EQ(gated.stats().puts, 1u)
            << "a sub-floor slack must not publish window records";
        EXPECT_EQ(gated.stats().windowMisses, 0u);
    }

    // Page cap: with the slack floor lifted but a 1-page cap, mcf's
    // multi-thousand-page map disqualifies every gap.
    {
        WarmStateStore::Config capped = ungatedWindows();
        capped.maxWindowPages = 1;
        WarmStateStore store(capped);
        auto out = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                        optsWithStores(&chunks, &store));
        ASSERT_TRUE(out[0].ok());
        EXPECT_EQ(campaignHash(out), golden);
        EXPECT_EQ(store.stats().puts, 1u)
            << "an over-cap page map must not publish window records";
        EXPECT_EQ(store.stats().windowMisses, 0u);
    }
}

// ---------------------- COW aliasing safety ----------------------

/** Serializes whatever `find(key)` currently holds, for before/after
 *  comparisons that prove restored runs never mutate the snapshot. */
std::string
snapshotImageBytes(WarmStateStore &store, const WarmStateKey &key)
{
    auto snap = store.find(key);
    EXPECT_NE(snap, nullptr);
    StateSink sink;
    FunctionalMemory::savePages(snap->pages, sink);
    return sink.take();
}

TEST(WarmStateCow, RestoredRunsNeverMutateTheResidentSnapshot)
{
    // Single-process multi-slot variant: several runs restore the same
    // resident snapshot concurrently-shared pages and then write to
    // them; the store's view (and each sibling's) must stay frozen.
    // Campaign equivalence implies this; the targeted variant pins the
    // sharing mechanics directly at the memory layer.
    FunctionalMemory warmed;
    for (Addr a = 0; a < 16 * kPageBytes; a += 64)
        warmed.write(a, a ^ 0x5aa5);

    WarmStateStore store;
    const WarmStateKey key = wkeyAt(0);
    store.put(key, WarmSnapshot{"blob", warmed.snapshotPages()});
    const std::string before = snapshotImageBytes(store, key);

    // The publisher's own later writes must clone, not leak through.
    warmed.write(0, 0xdead);

    // Two sibling slots restore the same snapshot and diverge.
    auto snap = store.find(key);
    ASSERT_NE(snap, nullptr);
    FunctionalMemory slot_a, slot_b;
    slot_a.restorePages(snap->pages);
    slot_b.restorePages(snap->pages);
    slot_a.write(0, 0x1111);
    slot_a.write(5 * kPageBytes, 0x2222);
    EXPECT_EQ(slot_b.read(0), 0u ^ 0x5aa5)
        << "a sibling slot's view must not see another slot's writes";
    EXPECT_EQ(slot_b.read(5 * kPageBytes), (5 * kPageBytes) ^ 0x5aa5);
    slot_b.write(0, 0x3333);
    EXPECT_EQ(slot_a.read(0), 0x1111u);

    EXPECT_EQ(snapshotImageBytes(store, key), before)
        << "the resident snapshot must be bitwise-frozen under "
           "publisher and restored-run writes";
}

TEST(WarmStateCow, DiskReplayedSnapshotIsIsolatedFromRestoredWrites)
{
    // Cross-process variant: a snapshot replayed from the disk tier by
    // a fresh store must also be isolated from a restored run's writes
    // (fresh pages allocated off the record, then COW-shared onward).
    const std::string dir = freshDir("warm_state_cow_disk");
    FunctionalMemory warmed;
    for (Addr a = 0; a < 8 * kPageBytes; a += 128)
        warmed.write(a, ~a);
    const WarmStateKey key = wkeyAt(3);
    {
        WarmStateStore::Config cfg;
        cfg.diskDir = dir;
        WarmStateStore writer(cfg);
        writer.put(key, WarmSnapshot{"blob", warmed.snapshotPages()});
    }
    WarmStateStore::Config cfg;
    cfg.diskDir = dir;
    WarmStateStore reader(cfg);
    const std::string before = snapshotImageBytes(reader, key);
    EXPECT_EQ(reader.stats().diskHits, 1u);

    auto snap = reader.find(key);
    ASSERT_NE(snap, nullptr);
    FunctionalMemory run;
    run.restorePages(snap->pages);
    for (Addr a = 0; a < 8 * kPageBytes; a += kPageBytes)
        run.write(a, 0xfeed);
    EXPECT_EQ(snapshotImageBytes(reader, key), before)
        << "writes after a disk replay must clone, not mutate";
    std::filesystem::remove_all(dir);
}

TEST(WarmStateCow, ConcurrentRestoresOfOneSnapshotAreRaceFree)
{
    // TSan stress: many threads restore the same resident snapshot and
    // immediately write every page. Refcount traffic on the shared
    // handles and the clone-on-first-write path must be data-race free
    // (shared_ptr counts are atomic; a count of 1 proves exclusivity).
    constexpr size_t kPages = 32;
    FunctionalMemory warmed;
    for (Addr a = 0; a < kPages * kPageBytes; a += 8)
        warmed.write(a, a * 2654435761ULL);

    WarmStateStore store;
    const WarmStateKey key = wkeyAt(7);
    store.put(key, WarmSnapshot{"blob", warmed.snapshotPages()});
    const std::string before = snapshotImageBytes(store, key);

    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&store, &key, t]() {
            auto snap = store.find(key);
            ASSERT_NE(snap, nullptr);
            FunctionalMemory run;
            run.restorePages(snap->pages);
            for (Addr a = 0; a < kPages * kPageBytes; a += kPageBytes) {
                // Reads see the warmed values, writes stay private.
                ASSERT_EQ(run.read(a + 8), (a + 8) * 2654435761ULL);
                run.write(a, 0x1000u + static_cast<uint64_t>(t));
            }
            for (Addr a = 0; a < kPages * kPageBytes; a += kPageBytes)
                ASSERT_EQ(run.read(a), 0x1000u + static_cast<uint64_t>(t));
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(snapshotImageBytes(store, key), before);
}

} // namespace
} // namespace catchsim
