/**
 * @file
 * Smoke test: every workload in the 70-entry suite must simulate cleanly
 * under the full CATCH configuration (detector + all four TACT
 * prefetchers) and produce a sane IPC. This catches kernel/machinery
 * interactions that unit tests cannot (e.g. a kernel emitting register
 * patterns the feeder mis-handles).
 */

#include <gtest/gtest.h>

#include "sim/configs.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"

namespace catchsim
{
namespace
{

class SuiteSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteSmoke, RunsUnderFullCatch)
{
    SimConfig cfg = withCatch(noL2(baselineSkx(), 9728));
    SimResult r = runWorkload(cfg, GetParam(), 12000, 4000);
    EXPECT_EQ(r.core.instrs, 12000u);
    EXPECT_GT(r.ipc, 0.01) << GetParam();
    EXPECT_LT(r.ipc, 4.2) << GetParam();
    // Load accounting must balance.
    uint64_t served = 0;
    for (int l = 0; l < 4; ++l)
        served += r.hier.loadHits[l];
    EXPECT_EQ(served, r.hier.loads) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SuiteSmoke,
                         ::testing::ValuesIn(stSuiteNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

} // namespace
} // namespace catchsim
