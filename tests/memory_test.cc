/**
 * @file
 * Unit tests for the sparse functional memory.
 */

#include <gtest/gtest.h>

#include "mem/functional_memory.hh"

namespace catchsim
{
namespace
{

TEST(FunctionalMemory, UntouchedReadsZero)
{
    FunctionalMemory mem;
    EXPECT_EQ(mem.read(0x1000), 0u);
    EXPECT_EQ(mem.pagesAllocated(), 0u); // const read must not allocate
}

TEST(FunctionalMemory, ReadAfterWrite)
{
    FunctionalMemory mem;
    mem.write(0x1000, 0xdeadbeef);
    EXPECT_EQ(mem.read(0x1000), 0xdeadbeefu);
}

TEST(FunctionalMemory, UnalignedAccessHitsContainingWord)
{
    FunctionalMemory mem;
    mem.write(0x1000, 42);
    EXPECT_EQ(mem.read(0x1003), 42u); // same 8-byte word
    EXPECT_EQ(mem.read(0x1008), 0u);  // next word
}

TEST(FunctionalMemory, SparsePages)
{
    FunctionalMemory mem;
    mem.write(0x0, 1);
    mem.write(0x100000000ULL, 2);
    EXPECT_EQ(mem.pagesAllocated(), 2u);
    EXPECT_EQ(mem.read(0x0), 1u);
    EXPECT_EQ(mem.read(0x100000000ULL), 2u);
}

TEST(FunctionalMemory, ManyWordsInOnePage)
{
    FunctionalMemory mem;
    for (Addr a = 0; a < 4096; a += 8)
        mem.write(a, a + 7);
    EXPECT_EQ(mem.pagesAllocated(), 1u);
    for (Addr a = 0; a < 4096; a += 8)
        EXPECT_EQ(mem.read(a), a + 7);
}

TEST(FunctionalMemory, OverwriteSticks)
{
    FunctionalMemory mem;
    mem.write(0x40, 1);
    mem.write(0x40, 2);
    EXPECT_EQ(mem.read(0x40), 2u);
}

} // namespace
} // namespace catchsim
