/**
 * @file
 * Unit tests for the sparse functional memory, including the
 * copy-on-write page-sharing contract behind warmed-state snapshots:
 * images share pages with the live memory, sharing freezes them, and
 * the first write to a shared page clones instead of mutating.
 */

#include <gtest/gtest.h>

#include "common/state_io.hh"
#include "mem/functional_memory.hh"

namespace catchsim
{
namespace
{

TEST(FunctionalMemory, UntouchedReadsZero)
{
    FunctionalMemory mem;
    EXPECT_EQ(mem.read(0x1000), 0u);
    EXPECT_EQ(mem.pagesAllocated(), 0u); // const read must not allocate
}

TEST(FunctionalMemory, ReadAfterWrite)
{
    FunctionalMemory mem;
    mem.write(0x1000, 0xdeadbeef);
    EXPECT_EQ(mem.read(0x1000), 0xdeadbeefu);
}

TEST(FunctionalMemory, UnalignedAccessHitsContainingWord)
{
    FunctionalMemory mem;
    mem.write(0x1000, 42);
    EXPECT_EQ(mem.read(0x1003), 42u); // same 8-byte word
    EXPECT_EQ(mem.read(0x1008), 0u);  // next word
}

TEST(FunctionalMemory, SparsePages)
{
    FunctionalMemory mem;
    mem.write(0x0, 1);
    mem.write(0x100000000ULL, 2);
    EXPECT_EQ(mem.pagesAllocated(), 2u);
    EXPECT_EQ(mem.read(0x0), 1u);
    EXPECT_EQ(mem.read(0x100000000ULL), 2u);
}

TEST(FunctionalMemory, ManyWordsInOnePage)
{
    FunctionalMemory mem;
    for (Addr a = 0; a < 4096; a += 8)
        mem.write(a, a + 7);
    EXPECT_EQ(mem.pagesAllocated(), 1u);
    for (Addr a = 0; a < 4096; a += 8)
        EXPECT_EQ(mem.read(a), a + 7);
}

TEST(FunctionalMemory, OverwriteSticks)
{
    FunctionalMemory mem;
    mem.write(0x40, 1);
    mem.write(0x40, 2);
    EXPECT_EQ(mem.read(0x40), 2u);
}

// --------------------- Copy-on-write sharing ---------------------

TEST(FunctionalMemoryCow, SnapshotSharesPagesWithoutCopying)
{
    FunctionalMemory mem;
    mem.write(0x1000, 11);
    mem.write(0x100000, 22);
    FunctionalMemory::PageImage image = mem.snapshotPages();
    ASSERT_EQ(image.size(), 2u);
    EXPECT_LT(image[0].first, image[1].first) << "ascending addresses";
    // Shared, not duplicated: the image holds the live pages.
    for (const auto &kv : image)
        EXPECT_EQ(kv.second.use_count(), 2) << "image + live map";
}

TEST(FunctionalMemoryCow, WriteAfterSnapshotClonesNotMutates)
{
    FunctionalMemory mem;
    mem.write(0x1000, 11);
    mem.write(0x2008, 22);
    FunctionalMemory::PageImage image = mem.snapshotPages();

    mem.write(0x1000, 99); // first write to a shared page: clones
    mem.write(0x2008, 88);
    EXPECT_EQ(mem.read(0x1000), 99u);
    EXPECT_EQ(mem.read(0x2008), 88u);

    FunctionalMemory replay;
    replay.restorePages(image);
    EXPECT_EQ(replay.read(0x1000), 11u)
        << "the snapshot must stay bitwise-frozen";
    EXPECT_EQ(replay.read(0x2008), 22u);
    // After the clone the image is each page's sole extra owner.
    EXPECT_EQ(image[0].second.use_count(), 2) << "image + replay map";
}

TEST(FunctionalMemoryCow, RestoredSiblingsDivergeIndependently)
{
    FunctionalMemory warmed;
    for (Addr a = 0; a < 4 * kPageBytes; a += 8)
        warmed.write(a, a + 1);
    FunctionalMemory::PageImage image = warmed.snapshotPages();

    FunctionalMemory a, b;
    a.restorePages(image);
    b.restorePages(image);
    a.write(0x10, 1000);
    b.write(0x10, 2000);
    EXPECT_EQ(a.read(0x10), 1000u);
    EXPECT_EQ(b.read(0x10), 2000u);
    EXPECT_EQ(warmed.read(0x10), 0x10u + 1)
        << "the producer is isolated from both restored runs";
    // Untouched pages remain physically shared by all four owners.
    EXPECT_EQ(image[3].second.use_count(), 4)
        << "image + producer + two siblings";
}

TEST(FunctionalMemoryCow, RepeatedWritesCloneOnlyOnce)
{
    FunctionalMemory mem;
    mem.write(0x0, 5);
    FunctionalMemory::PageImage image = mem.snapshotPages();
    mem.write(0x0, 6);
    const void *cloned = nullptr;
    {
        FunctionalMemory probe;
        probe.restorePages(mem.snapshotPages());
        cloned = &probe; // silence unused warnings; address irrelevant
    }
    // After the first post-snapshot write the page is exclusive again:
    // later writes take the fast path and no further copies happen.
    mem.write(0x8, 7);
    mem.write(0x0, 8);
    EXPECT_EQ(mem.read(0x0), 8u);
    EXPECT_EQ(mem.read(0x8), 7u);
    EXPECT_NE(cloned, nullptr);
    FunctionalMemory replay;
    replay.restorePages(image);
    EXPECT_EQ(replay.read(0x0), 5u);
    EXPECT_EQ(replay.read(0x8), 0u);
}

TEST(FunctionalMemoryCow, TlbRefillDoesNotLeakWriteValidity)
{
    // Two pages that alias the same translation-cache entry: after the
    // cache entry is repurposed by a read of the aliasing page, a write
    // to the original page must not fast-path into the wrong page.
    constexpr Addr kAlias = 16384 * kPageBytes; // kTlbEntries * page
    FunctionalMemory mem;
    mem.write(0x0, 1);       // page 0 write-valid in the cache
    EXPECT_EQ(mem.read(kAlias), 0u); // read refill repurposes the entry
    mem.write(0x0, 2);       // must resolve page 0, not the alias
    EXPECT_EQ(mem.read(0x0), 2u);
    EXPECT_EQ(mem.read(kAlias), 0u)
        << "the aliasing page must stay untouched";

    // And the snapshot taken mid-pattern stays frozen.
    FunctionalMemory::PageImage image = mem.snapshotPages();
    mem.write(kAlias, 3); // write-refill the aliased entry
    mem.write(0x0, 4);    // then write the original through a refill
    EXPECT_EQ(mem.read(kAlias), 3u);
    EXPECT_EQ(mem.read(0x0), 4u);
    FunctionalMemory replay;
    replay.restorePages(image);
    EXPECT_EQ(replay.read(0x0), 2u);
    EXPECT_EQ(replay.read(kAlias), 0u);
}

TEST(FunctionalMemoryCow, PageImageSerializationRoundTrips)
{
    FunctionalMemory mem;
    mem.write(0x100, 1);
    mem.write(0x300000, 2);
    FunctionalMemory::PageImage image = mem.snapshotPages();
    StateSink sink;
    FunctionalMemory::savePages(image, sink);

    StateSource src(sink.bytes());
    FunctionalMemory::PageImage parsed;
    ASSERT_TRUE(FunctionalMemory::loadPages(src, &parsed));
    EXPECT_TRUE(src.exhausted());
    StateSink again;
    FunctionalMemory::savePages(parsed, again);
    EXPECT_EQ(sink.bytes(), again.bytes());
    // Parsed pages are fresh allocations, not views into the source.
    for (const auto &kv : parsed)
        EXPECT_EQ(kv.second.use_count(), 1);
}

TEST(FunctionalMemoryCow, MalformedPageSectionIsRejected)
{
    FunctionalMemory mem;
    mem.write(0x0, 1);
    mem.write(kPageBytes, 2);
    FunctionalMemory::PageImage image = mem.snapshotPages();
    std::swap(image[0], image[1]); // violate the ascending-addr contract
    StateSink sink;
    FunctionalMemory::savePages(image, sink);
    StateSource src(sink.bytes());
    FunctionalMemory::PageImage parsed;
    EXPECT_FALSE(FunctionalMemory::loadPages(src, &parsed))
        << "out-of-order page sections must be refused, not adopted";
}

} // namespace
} // namespace catchsim
