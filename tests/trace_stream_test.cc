/**
 * @file
 * TraceStream correctness: the chunked, O(chunk)-memory stream must be
 * op-for-op identical to the materialized oracle (Workload::generate),
 * across chunk boundaries, partial final chunks, rewinds, and for every
 * workload in the quick suite. These equalities are what licenses the
 * simulator's streamed default — the golden-hash tests in
 * determinism_test.cc then extend them to full SimResults.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "trace/suite.hh"
#include "trace/trace_stream.hh"
#include "trace/trace_view.hh"

namespace catchsim
{
namespace
{

void
expectOpEq(const MicroOp &a, const MicroOp &b, size_t i,
           const std::string &what)
{
    ASSERT_EQ(a.pc, b.pc) << what << " op " << i;
    ASSERT_EQ(a.cls, b.cls) << what << " op " << i;
    ASSERT_EQ(a.memAddr, b.memAddr) << what << " op " << i;
    ASSERT_EQ(a.value, b.value) << what << " op " << i;
    ASSERT_EQ(a.taken, b.taken) << what << " op " << i;
    ASSERT_EQ(a.dst, b.dst) << what << " op " << i;
    for (uint32_t s = 0; s < kMaxSrcs; ++s)
        ASSERT_EQ(a.src[s], b.src[s]) << what << " op " << i;
}

/** Walks the whole stream in consumer order, collecting every op. */
std::vector<MicroOp>
drain(TraceStream &stream)
{
    std::vector<MicroOp> out;
    out.reserve(stream.size());
    TraceView view = stream.view();
    for (size_t p = 0; p < stream.size(); ++p) {
        stream.ensure(p);
        out.push_back(view.at(p));
    }
    return out;
}

TEST(TraceStream, MatchesMaterializedOracleAcrossQuickSuite)
{
    for (const std::string &name : stQuickNames()) {
        auto oracle_wl = makeWorkload(name);
        Trace oracle = oracle_wl->generate(30000);

        auto wl = makeWorkload(name);
        TraceStream stream(*wl, 30000, /*chunk_ops=*/4096);
        ASSERT_EQ(stream.size(), oracle.ops.size()) << name;
        std::vector<MicroOp> streamed = drain(stream);
        for (size_t i = 0; i < oracle.ops.size(); ++i)
            expectOpEq(streamed[i], oracle.ops[i], i, name);
    }
}

TEST(TraceStream, ChunkBoundaryCases)
{
    // Below one chunk, exactly one, exactly two (ring-full), one past a
    // chunk boundary, and a partial final chunk.
    const size_t chunk = 4096;
    for (size_t total : {size_t(1000), chunk, 2 * chunk, 2 * chunk + 1,
                         size_t(20000)}) {
        auto oracle_wl = makeWorkload("mcf");
        Trace oracle = oracle_wl->generate(total);

        auto wl = makeWorkload("mcf");
        TraceStream stream(*wl, total, chunk);
        std::vector<MicroOp> streamed = drain(stream);
        ASSERT_EQ(streamed.size(), oracle.ops.size());
        for (size_t i = 0; i < total; ++i)
            expectOpEq(streamed[i], oracle.ops[i], i, "mcf");
    }
}

TEST(TraceStream, LookaheadWindowIsAlwaysResident)
{
    // The runahead walker reads up to a chunk past the consumer; verify
    // those slots already hold the right ops *before* the consumer
    // advances into them.
    const size_t chunk = 4096;
    const size_t total = 5 * chunk + 123;
    auto oracle_wl = makeWorkload("omnetpp");
    Trace oracle = oracle_wl->generate(total);

    auto wl = makeWorkload("omnetpp");
    TraceStream stream(*wl, total, chunk);
    TraceView view = stream.view();
    for (size_t p = 0; p < total; ++p) {
        stream.ensure(p);
        expectOpEq(view.at(p), oracle.ops[p], p, "consume");
        size_t ahead = std::min(total - 1, p + chunk - 1);
        expectOpEq(view.at(ahead), oracle.ops[ahead], ahead, "lookahead");
    }
}

TEST(TraceStream, RewindReplaysIdentically)
{
    auto wl = makeWorkload("xalancbmk");
    TraceStream stream(*wl, 20000, 4096);
    std::vector<MicroOp> first = drain(stream);
    stream.rewind();
    std::vector<MicroOp> second = drain(stream);
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i)
        expectOpEq(second[i], first[i], i, "rewind");
}

TEST(TraceStream, RewindAfterPartialConsumption)
{
    auto wl = makeWorkload("mcf");
    Trace oracle = makeWorkload("mcf")->generate(20000);

    TraceStream stream(*wl, 20000, 4096);
    TraceView view = stream.view();
    // Consume only part of the stream, then start over.
    for (size_t p = 0; p < 10000; ++p)
        stream.ensure(p);
    stream.rewind();
    std::vector<MicroOp> streamed = drain(stream);
    for (size_t i = 0; i < streamed.size(); ++i)
        expectOpEq(streamed[i], oracle.ops[i], i, "partial-rewind");
}

TEST(TraceStream, MemoryAddressStableAcrossRewind)
{
    // TACT-Feeder captures the FunctionalMemory pointer at build time;
    // rewind() must reset the memory in place, not reallocate it.
    auto wl = makeWorkload("mcf");
    TraceStream stream(*wl, 10000, 4096);
    const FunctionalMemory *before = stream.mem().get();
    stream.rewind();
    EXPECT_EQ(stream.mem().get(), before);
}

TEST(TraceStream, MemoryMatchesOracleForAllLoads)
{
    // After a full stream, every load's address must read the same
    // value the materialized trace's final image holds (the feeder's
    // value source).
    auto oracle_wl = makeWorkload("mcf");
    Trace oracle = oracle_wl->generate(30000);

    auto wl = makeWorkload("mcf");
    TraceStream stream(*wl, 30000, 4096);
    std::vector<MicroOp> streamed = drain(stream);
    for (const auto &op : streamed)
        if (op.isLoad())
            EXPECT_EQ(stream.mem()->read(op.memAddr),
                      oracle.mem->read(op.memAddr));
}

TEST(TraceStream, GenerateIsIdempotent)
{
    // Workload objects must reset their generation cursors in setup():
    // two generate() calls (or a stream after a generate) must produce
    // the same trace. Sweep the full suite — this is the regression
    // guard for every kernel's cursor reset.
    for (const std::string &name : stSuiteNames()) {
        auto wl = makeWorkload(name);
        Trace a = wl->generate(12000);
        Trace b = wl->generate(12000);
        ASSERT_EQ(a.ops.size(), b.ops.size()) << name;
        for (size_t i = 0; i < a.ops.size(); ++i)
            expectOpEq(b.ops[i], a.ops[i], i, name);
    }
}

TEST(TraceStream, SingleWorkloadObjectCanStreamTwice)
{
    auto wl = makeWorkload("libquantum");
    Trace oracle = makeWorkload("libquantum")->generate(15000);
    {
        TraceStream first(*wl, 15000, 4096);
        drain(first);
    }
    TraceStream second(*wl, 15000, 4096);
    std::vector<MicroOp> streamed = drain(second);
    for (size_t i = 0; i < streamed.size(); ++i)
        expectOpEq(streamed[i], oracle.ops[i], i, "second-stream");
}

// ------------------- Store-backed streams ------------------------
// The memoized refill path (trace/chunk_store.hh) must be op-for-op
// invisible: a store-backed stream serves exactly the legacy sequence
// at every boundary shape, across rewinds, whether chunks come from
// the generator, the memory tier, or the disk tier.

TEST(TraceStream, StoreBackedStreamMatchesOracleAtChunkBoundaries)
{
    const size_t chunk = 4096;
    ChunkStore store;
    for (size_t total : {size_t(1000), chunk, 2 * chunk, 2 * chunk + 1,
                         3 * chunk - 1, size_t(20000)}) {
        auto oracle_wl = makeWorkload("mcf");
        Trace oracle = oracle_wl->generate(total);

        // Cold pass (generates + publishes), then a warm pass that
        // serves the same positions purely from the store.
        for (int pass = 0; pass < 2; ++pass) {
            auto wl = makeWorkload("mcf");
            TraceStream stream(*wl, total, chunk,
                               std::function<double()>(), &store);
            std::vector<MicroOp> streamed = drain(stream);
            for (size_t i = 0; i < total; ++i)
                expectOpEq(streamed[i], oracle.ops[i], i,
                           "store total=" + std::to_string(total) +
                               " pass=" + std::to_string(pass));
        }
    }
    EXPECT_GT(store.stats().hits, 0u);
}

TEST(TraceStream, RewindAcrossStoreServedChunksIsDeterministic)
{
    // A rewind discards the regeneration engine mid-identity; the next
    // refill — store hit or re-seeded regeneration — must restart the
    // canonical sequence at op 0. Partially warming the store first
    // makes the second pass cross generated AND store-served chunks.
    const size_t chunk = 4096;
    const size_t total = 5 * chunk + 123;
    auto oracle_wl = makeWorkload("omnetpp");
    Trace oracle = oracle_wl->generate(total);

    ChunkStore store;
    auto wl = makeWorkload("omnetpp");
    TraceStream stream(*wl, total, chunk, std::function<double()>(),
                       &store);
    // Consume 2.5 chunks (warms chunks 0..3 via lookahead), rewind
    // mid-chunk, then drain fully: the replay crosses store-served
    // chunks before missing into fresh generation.
    for (size_t p = 0; p < 2 * chunk + chunk / 2; ++p)
        stream.ensure(p);
    stream.rewind();
    std::vector<MicroOp> streamed = drain(stream);
    for (size_t i = 0; i < total; ++i)
        expectOpEq(streamed[i], oracle.ops[i], i, "store-rewind");
    EXPECT_GT(stream.storeHits(), 0u);
    EXPECT_GT(stream.storeMisses(), 0u);

    // And again from the now fully-warm store: pure hits.
    stream.rewind();
    std::vector<MicroOp> again = drain(stream);
    for (size_t i = 0; i < total; ++i)
        expectOpEq(again[i], oracle.ops[i], i, "warm-rewind");
}

TEST(TraceStream, StoreMemoryMatchesOracleForAllLoads)
{
    // Store mode replays each served chunk's Store ops into the
    // consumer-visible memory; the feeder-facing contract (loads read
    // the oracle image) must hold exactly as in legacy mode.
    auto oracle_wl = makeWorkload("mcf");
    Trace oracle = oracle_wl->generate(30000);

    ChunkStore store;
    for (int pass = 0; pass < 2; ++pass) {
        auto wl = makeWorkload("mcf");
        TraceStream stream(*wl, 30000, 4096,
                           std::function<double()>(), &store);
        std::vector<MicroOp> streamed = drain(stream);
        for (const auto &op : streamed)
            if (op.isLoad())
                EXPECT_EQ(stream.mem()->read(op.memAddr),
                          oracle.mem->read(op.memAddr))
                    << "pass " << pass;
    }
}

TEST(TraceStream, EvictingStoreStillServesCanonically)
{
    // A store too small to hold the identity thrashes (every refill
    // regenerates from chunk 0 through the requested index); the
    // consumer must not be able to tell.
    const size_t chunk = 4096;
    const size_t total = 4 * chunk + 7;
    auto oracle_wl = makeWorkload("tpcc");
    Trace oracle = oracle_wl->generate(total);

    ChunkStore::Config cfg;
    cfg.memBudgetBytes = 1; // floor: exactly one resident chunk
    ChunkStore store(cfg);
    auto wl = makeWorkload("tpcc");
    TraceStream stream(*wl, total, chunk, std::function<double()>(),
                       &store);
    std::vector<MicroOp> streamed = drain(stream);
    for (size_t i = 0; i < total; ++i)
        expectOpEq(streamed[i], oracle.ops[i], i, "evicting-store");
    EXPECT_GT(store.stats().evictions, 0u);
}

TEST(TraceView, MaskedIndexingWrapsRing)
{
    std::vector<MicroOp> ring(8);
    for (size_t i = 0; i < ring.size(); ++i)
        ring[i].pc = 0x1000 + i;
    TraceView view{ring.data(), ring.size() - 1, 100};
    EXPECT_EQ(view.at(0).pc, 0x1000u);
    EXPECT_EQ(view.at(8).pc, 0x1000u);  // wraps to slot 0
    EXPECT_EQ(view.at(13).pc, 0x1005u); // 13 & 7 == 5
    EXPECT_EQ(view.count, 100u);
}

TEST(TraceView, IdentityMaskForMaterializedTraces)
{
    std::vector<MicroOp> ops(3);
    ops[2].pc = 0x42;
    TraceView view = makeView(ops);
    EXPECT_EQ(view.mask, ~size_t(0));
    EXPECT_EQ(view.count, 3u);
    EXPECT_EQ(view.at(2).pc, 0x42u);
}

TEST(MicroOp, StaysWithinPackedBudget)
{
    // The hot loop streams these by the hundred million; the packed
    // layout (pc + memAddr/target union + value + bytes) must not
    // regress past 32 bytes.
    static_assert(sizeof(MicroOp) <= 32, "MicroOp must stay packed");
    EXPECT_LE(sizeof(MicroOp), 32u);
}

} // namespace
} // namespace catchsim
