/**
 * @file
 * Tests for the typed error taxonomy (common/error.hh) and the JSON
 * writer/parser pair (common/json.hh) the journal and results exporter
 * are built on. The round-trip cases pin the contract the resume logic
 * depends on: u64 counters and %.17g doubles survive write -> parse
 * bit-for-bit, and malformed input always comes back as a SimError,
 * never UB.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/error.hh"
#include "common/json.hh"

namespace catchsim
{
namespace
{

// --------------------------- SimError ----------------------------

TEST(SimErrorTaxonomy, CategoryNamesRoundTrip)
{
    for (ErrorCategory c :
         {ErrorCategory::Config, ErrorCategory::TraceCorrupt,
          ErrorCategory::IoTransient, ErrorCategory::BudgetExceeded,
          ErrorCategory::Internal}) {
        auto back = errorCategoryFromName(errorCategoryName(c));
        ASSERT_TRUE(back.has_value()) << errorCategoryName(c);
        EXPECT_EQ(*back, c);
    }
    EXPECT_FALSE(errorCategoryFromName("bogus").has_value());
    EXPECT_FALSE(errorCategoryFromName("").has_value());
}

TEST(SimErrorTaxonomy, OnlyIoTransientIsRetryable)
{
    for (ErrorCategory c :
         {ErrorCategory::Config, ErrorCategory::TraceCorrupt,
          ErrorCategory::BudgetExceeded, ErrorCategory::Internal}) {
        SimError e{c, ""};
        EXPECT_FALSE(e.transient()) << errorCategoryName(c);
    }
    SimError transient{ErrorCategory::IoTransient, ""};
    EXPECT_TRUE(transient.transient());
}

TEST(SimErrorTaxonomy, SimErrorConcatenatesHeterogeneousArgs)
{
    SimError e = simError(ErrorCategory::Config, "bad knob ", 42,
                          " (want <= ", 1.5, ")");
    EXPECT_EQ(e.category, ErrorCategory::Config);
    EXPECT_EQ(e.message, "bad knob 42 (want <= 1.5)");
}

// --------------------------- Expected ----------------------------

Expected<int>
half(int v)
{
    if (v % 2)
        return simError(ErrorCategory::Config, "odd value ", v);
    return v / 2;
}

TEST(Expected, ValueAndErrorSides)
{
    auto ok = half(8);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(static_cast<bool>(ok));
    EXPECT_EQ(ok.value(), 4);

    auto err = half(7);
    ASSERT_FALSE(err.ok());
    EXPECT_FALSE(static_cast<bool>(err));
    EXPECT_EQ(err.error().category, ErrorCategory::Config);
    EXPECT_EQ(err.error().message, "odd value 7");
}

TEST(Expected, MoveOutOfRvalue)
{
    Expected<std::string> e(std::string(64, 'x'));
    std::string s = std::move(e).value();
    EXPECT_EQ(s.size(), 64u);
}

TEST(Expected, VoidSpecialisation)
{
    Expected<void> ok;
    EXPECT_TRUE(ok.ok());
    Expected<void> bad = simError(ErrorCategory::Internal, "boom");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().message, "boom");
}

TEST(ExpectedDeathTest, ValueOnErrorAsserts)
{
    EXPECT_DEATH(
        {
            auto e = half(3);
            (void)e.value();
        },
        "value\\(\\) on error Expected");
}

TEST(ExpectedDeathTest, ErrorOnOkAsserts)
{
    EXPECT_DEATH(
        {
            auto e = half(4);
            (void)e.error();
        },
        "error\\(\\) on ok Expected");
}

// -------------------------- JsonWriter ---------------------------

TEST(Json, WriterParserRoundTrip)
{
    JsonWriter w;
    w.open();
    w.field("max_u64", static_cast<uint64_t>(UINT64_MAX));
    w.field("tenth", 0.1);
    w.field("tiny", 1e-300);
    w.field("name", std::string("quote\" back\\slash"));
    w.field("flag", true);
    const uint64_t counters[3] = {1, 0, (1ULL << 63) + 1};
    w.fieldArray("counters", counters, 3);
    w.object("nested");
    w.field("inner", static_cast<uint64_t>(7));
    w.close();
    w.rawField("spliced", "{\"a\":1}");
    w.close();

    auto doc = parseJson(w.str());
    ASSERT_TRUE(doc.ok());
    const JsonValue &v = doc.value();
    ASSERT_TRUE(v.isObject());

    ASSERT_NE(v.member("max_u64"), nullptr);
    EXPECT_EQ(v.member("max_u64")->asU64(), UINT64_MAX)
        << "u64 counters must survive above 2^53";
    ASSERT_NE(v.member("tenth"), nullptr);
    EXPECT_EQ(v.member("tenth")->asDouble(), 0.1)
        << "%.17g must round-trip the exact bit pattern";
    EXPECT_EQ(v.member("tiny")->asDouble(), 1e-300);
    ASSERT_NE(v.member("name"), nullptr);
    EXPECT_EQ(v.member("name")->asString(), "quote\" back\\slash");
    EXPECT_TRUE(v.member("flag")->asBool());

    const JsonValue *arr = v.member("counters");
    ASSERT_NE(arr, nullptr);
    ASSERT_TRUE(arr->isArray());
    ASSERT_EQ(arr->size(), 3u);
    EXPECT_EQ(arr->at(0)->asU64(), 1u);
    EXPECT_EQ(arr->at(2)->asU64(), (1ULL << 63) + 1);
    EXPECT_EQ(arr->at(3), nullptr) << "out-of-range index";

    const JsonValue *nested = v.member("nested");
    ASSERT_NE(nested, nullptr);
    ASSERT_TRUE(nested->isObject());
    EXPECT_EQ(nested->member("inner")->asU64(), 7u);

    const JsonValue *spliced = v.member("spliced");
    ASSERT_NE(spliced, nullptr);
    EXPECT_EQ(spliced->member("a")->asU64(), 1u);

    EXPECT_EQ(v.member("absent"), nullptr);
}

TEST(Json, NegativeAndFractionalNumbersParseAsDoubles)
{
    auto doc = parseJson("{\"a\":-5,\"b\":2.5e3}");
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().member("a")->asDouble(), -5.0);
    EXPECT_EQ(doc.value().member("b")->asDouble(), 2500.0);
}

TEST(Json, MalformedInputIsARejectedSimError)
{
    // Every shape of damage a half-written journal line can take must
    // come back as a trace-corrupt error, never parse half a record.
    for (const char *bad :
         {"", "{\"a\":1", "{} junk", "{a:1}", "[1,2", "\"unterminated",
          "{\"a\":}", "nul", "{\"a\":1,}", "12x34"}) {
        auto doc = parseJson(bad);
        ASSERT_FALSE(doc.ok()) << "must reject: " << bad;
        EXPECT_EQ(doc.error().category, ErrorCategory::TraceCorrupt)
            << bad;
    }
}

TEST(Json, NestingDepthIsBounded)
{
    std::string deep(100, '[');
    auto doc = parseJson(deep);
    ASSERT_FALSE(doc.ok());
}

} // namespace
} // namespace catchsim
