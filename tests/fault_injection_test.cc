/**
 * @file
 * Tests for the deterministic fault-injection harness
 * (common/fault_inject.hh), the watchdog budget (sim/run_guard.hh) and
 * the per-run isolation layer that consumes both.
 *
 * The acceptance scenario for the fault-contained executor lives here:
 * inject faults into 3 of N workloads, run the campaign at jobs
 * 1/8/16, and require exactly 3 structured RunFailures while every
 * unaffected slot stays bitwise-identical to a fault-free campaign.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault_inject.hh"
#include "sim/warm_state.hh"
#include "trace/chunk_store.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/run_guard.hh"
#include "sim_result_compare.hh"

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 20000;
constexpr uint64_t kWarm = 5000;

/** A plan with no clauses: injection off, global env plan bypassed. */
const FaultPlan kNoFaults;

FaultPlan
mustParse(const std::string &spec)
{
    auto plan = FaultPlan::parse(spec);
    EXPECT_TRUE(plan.ok()) << spec;
    return plan.ok() ? std::move(plan).value() : FaultPlan{};
}

// ------------------------- Spec parsing --------------------------

TEST(FaultSpec, KindNamesRoundTrip)
{
    for (FaultKind k :
         {FaultKind::TraceCorrupt, FaultKind::StateCorrupt,
          FaultKind::IoTransient, FaultKind::WorkerThrow,
          FaultKind::Hang, FaultKind::CrashAbort, FaultKind::CrashSegv,
          FaultKind::Oom, FaultKind::ExecFail,
          FaultKind::HeartbeatStall}) {
        FaultPlan plan = mustParse(std::string(faultKindName(k)) + ":*");
        ASSERT_EQ(plan.clauses().size(), 1u);
        EXPECT_EQ(plan.clauses()[0].kind, k);
    }
}

TEST(FaultSpec, ProcessKindsSupportEveryTargetForm)
{
    FaultPlan plan = mustParse(
        "crash-segv:%25@7;crash-abort:mcf:x1;oom:*;exec-fail:tpcc;"
        "heartbeat-stall:milc");
    ASSERT_EQ(plan.clauses().size(), 5u);
    EXPECT_TRUE(plan.clauses()[0].percent);
    EXPECT_EQ(plan.clauses()[0].pct, 25u);
    EXPECT_EQ(plan.clauses()[0].seed, 7u);
    EXPECT_EQ(plan.clauses()[1].failCount, 1u);
    EXPECT_TRUE(plan.clauses()[2].every);
    EXPECT_EQ(plan.clauses()[2].failCount, 0u)
        << "process kinds default to persistent";

    // ':x1' counts process attempts: spawn 1 crashes, restart 2 runs.
    EXPECT_TRUE(plan.shouldInject(FaultKind::CrashAbort, "mcf", 1));
    EXPECT_FALSE(plan.shouldInject(FaultKind::CrashAbort, "mcf", 2));
    EXPECT_TRUE(plan.shouldInject(FaultKind::Oom, "anything", 9));
    EXPECT_FALSE(plan.shouldInject(FaultKind::HeartbeatStall, "tpcc", 1))
        << "kinds are independent";
    EXPECT_TRUE(plan.shouldInject(FaultKind::ExecFail, "tpcc", 1));
}

TEST(FaultSpec, ClauseFormsParse)
{
    FaultPlan plan = mustParse(
        "io-transient:mcf;io-transient:tpcc:x9;trace-corrupt:*;"
        "exception:%10@42");
    ASSERT_EQ(plan.clauses().size(), 4u);

    EXPECT_EQ(plan.clauses()[0].target, "mcf");
    EXPECT_EQ(plan.clauses()[0].failCount, 1u)
        << "io-transient defaults to one failing attempt";

    EXPECT_EQ(plan.clauses()[1].failCount, 9u);

    EXPECT_TRUE(plan.clauses()[2].every);
    EXPECT_EQ(plan.clauses()[2].failCount, 0u)
        << "non-transient kinds default to persistent";

    EXPECT_TRUE(plan.clauses()[3].percent);
    EXPECT_EQ(plan.clauses()[3].pct, 10u);
    EXPECT_EQ(plan.clauses()[3].seed, 42u);
}

TEST(FaultSpec, MalformedSpecsAreConfigErrors)
{
    for (const char *bad :
         {"frobnicate:mcf", "io-transient", "io-transient:",
          "io-transient:mcf:x0", "io-transient:mcf:xq",
          "exception:%@5", "exception:%150@5", "exception:%10"}) {
        auto plan = FaultPlan::parse(bad);
        ASSERT_FALSE(plan.ok()) << "must reject: " << bad;
        EXPECT_EQ(plan.error().category, ErrorCategory::Config) << bad;
    }
}

TEST(FaultSpec, EmptyAndSeparatorOnlySpecsDisableInjection)
{
    EXPECT_FALSE(mustParse("").enabled());
    EXPECT_FALSE(mustParse(";;").enabled());
}

// ----------------------- Injection queries -----------------------

TEST(FaultSpec, AttemptCountGatesTransientInjection)
{
    FaultPlan plan = mustParse("io-transient:mcf");
    EXPECT_TRUE(plan.shouldInject(FaultKind::IoTransient, "mcf", 1));
    EXPECT_FALSE(plan.shouldInject(FaultKind::IoTransient, "mcf", 2))
        << "the retry must succeed";
    EXPECT_FALSE(plan.shouldInject(FaultKind::IoTransient, "tpcc", 1));
    EXPECT_FALSE(plan.shouldInject(FaultKind::TraceCorrupt, "mcf", 1))
        << "kinds are independent";
}

TEST(FaultSpec, PersistentFaultsHitEveryAttempt)
{
    FaultPlan plan = mustParse("trace-corrupt:*");
    for (unsigned attempt : {1u, 2u, 17u})
        EXPECT_TRUE(plan.shouldInject(FaultKind::TraceCorrupt, "anything",
                                      attempt));
}

TEST(FaultSpec, PercentSelectionIsDeterministicPerName)
{
    // The seeded per-name draw must not depend on call order, attempt
    // number or plan instance — only on (seed, name).
    FaultPlan a = mustParse("exception:%50@7");
    FaultPlan b = mustParse("exception:%50@7");
    const std::vector<std::string> names = {"mcf",  "hmmer", "omnetpp",
                                            "tpcc", "milc",  "gobmk"};
    unsigned selected = 0;
    for (const auto &n : names) {
        bool first = a.shouldInject(FaultKind::WorkerThrow, n, 1);
        EXPECT_EQ(first, a.shouldInject(FaultKind::WorkerThrow, n, 3));
        EXPECT_EQ(first, b.shouldInject(FaultKind::WorkerThrow, n, 1));
        selected += first;
    }
    FaultPlan other = mustParse("exception:%50@8");
    unsigned other_selected = 0;
    for (const auto &n : names)
        other_selected += other.shouldInject(FaultKind::WorkerThrow, n, 1);
    // 0% and 100% must behave as stated regardless of seed.
    FaultPlan none = mustParse("exception:%0@7");
    FaultPlan all = mustParse("exception:%100@7");
    for (const auto &n : names) {
        EXPECT_FALSE(none.shouldInject(FaultKind::WorkerThrow, n, 1));
        EXPECT_TRUE(all.shouldInject(FaultKind::WorkerThrow, n, 1));
    }
    (void)selected;
    (void)other_selected;
}

// --------------------------- Watchdog ----------------------------

TEST(WatchdogBudget, CycleCeilingTrips)
{
    Watchdog wd(RunBudget{/*maxCycles=*/100, /*stallWindowCycles=*/0});
    EXPECT_FALSE(wd.poll(50, 1).has_value());
    EXPECT_FALSE(wd.poll(100, 2).has_value()) << "ceiling is inclusive";
    auto err = wd.poll(101, 3);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->category, ErrorCategory::BudgetExceeded);
}

TEST(WatchdogBudget, StallWindowTripsOnlyWithoutProgress)
{
    Watchdog wd(RunBudget{/*maxCycles=*/0, /*stallWindowCycles=*/100});
    EXPECT_FALSE(wd.poll(0, 0).has_value());
    EXPECT_FALSE(wd.poll(100, 0).has_value());
    // Retiring an instruction resets the window...
    EXPECT_FALSE(wd.poll(90, 1).has_value());
    EXPECT_FALSE(wd.poll(190, 1).has_value());
    // ...and only a full windowless stretch trips it.
    auto err = wd.poll(191, 1);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->category, ErrorCategory::BudgetExceeded);
}

TEST(WatchdogBudget, UnlimitedBudgetNeverTrips)
{
    RunBudget none = RunBudget::unlimited();
    EXPECT_FALSE(none.limited());
    Watchdog wd(none);
    EXPECT_FALSE(wd.poll(1ULL << 40, 0).has_value());
}

// ---------------------- Isolated execution -----------------------

IsolationOptions
optsWith(const FaultPlan &plan)
{
    IsolationOptions opts;
    opts.plan = &plan;
    opts.backoffMs = 0; // keep the test fast; pacing is not under test
    return opts;
}

/**
 * The acceptance scenario: 3 of 5 workloads carry injected faults (one
 * per containment path); the campaign completes with exactly 3
 * structured failures and the other slots bitwise-identical to a
 * fault-free campaign at any job count.
 */
TEST(IsolatedExecution, ThreeInjectedFaultsAreContainedBitwise)
{
    const std::vector<std::string> names = {"mcf", "hmmer", "omnetpp",
                                            "tpcc", "milc"};
    SimConfig cfg = withCatch(baselineSkx());

    auto baseline = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                         optsWith(kNoFaults));
    ASSERT_EQ(baseline.size(), names.size());
    for (const auto &o : baseline)
        ASSERT_TRUE(o.ok()) << o.workload;

    FaultPlan plan =
        mustParse("trace-corrupt:mcf;exception:tpcc;hang:milc");
    for (unsigned jobs : {1u, 8u, 16u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        auto faulty = runWorkloadsIsolated(cfg, names, kInstr, kWarm,
                                           jobs, optsWith(plan));
        ASSERT_EQ(faulty.size(), names.size());

        unsigned failures = 0;
        for (size_t i = 0; i < names.size(); ++i) {
            EXPECT_EQ(faulty[i].workload, names[i]) << "order stable";
            EXPECT_EQ(faulty[i].config, cfg.name);
            failures += !faulty[i].ok();
        }
        EXPECT_EQ(failures, 3u)
            << "exactly the injected runs may fail";

        // mcf: corrupt trace -> failed, not retried.
        const RunOutcome &mcf = faulty[0];
        ASSERT_FALSE(mcf.ok());
        EXPECT_EQ(mcf.status, RunStatus::Failed);
        EXPECT_EQ(mcf.attempts, 1u);
        ASSERT_TRUE(mcf.failure.has_value());
        EXPECT_EQ(mcf.failure->error.category,
                  ErrorCategory::TraceCorrupt);
        EXPECT_NE(mcf.failure->error.message.find("injected"),
                  std::string::npos);

        // tpcc: thrown exception -> contained as internal.
        const RunOutcome &tpcc = faulty[3];
        ASSERT_FALSE(tpcc.ok());
        EXPECT_EQ(tpcc.status, RunStatus::Failed);
        ASSERT_TRUE(tpcc.failure.has_value());
        EXPECT_EQ(tpcc.failure->error.category, ErrorCategory::Internal);
        EXPECT_NE(tpcc.failure->error.message.find("worker exception"),
                  std::string::npos);

        // milc: hang driven through the real watchdog -> timed out.
        const RunOutcome &milc = faulty[4];
        ASSERT_FALSE(milc.ok());
        EXPECT_EQ(milc.status, RunStatus::TimedOut);
        ASSERT_TRUE(milc.failure.has_value());
        EXPECT_EQ(milc.failure->error.category,
                  ErrorCategory::BudgetExceeded);

        // Unaffected slots: bitwise-identical to the fault-free run.
        for (size_t i : {size_t(1), size_t(2)}) {
            EXPECT_EQ(faulty[i].status, RunStatus::Ok) << names[i];
            expectBitwiseEqual(baseline[i].result, faulty[i].result);
        }
    }
}

TEST(IsolatedExecution, TransientErrorRetriesAndRecovers)
{
    const std::vector<std::string> names = {"hmmer"};
    SimConfig cfg = baselineSkx();

    auto clean = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                      optsWith(kNoFaults));
    ASSERT_TRUE(clean[0].ok());

    FaultPlan plan = mustParse("io-transient:hmmer");
    auto retried = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                        optsWith(plan));
    ASSERT_EQ(retried.size(), 1u);
    ASSERT_TRUE(retried[0].ok());
    EXPECT_EQ(retried[0].status, RunStatus::Retried);
    EXPECT_EQ(retried[0].attempts, 2u);
    expectBitwiseEqual(clean[0].result, retried[0].result);
}

TEST(IsolatedExecution, ExhaustedRetriesBecomeAStructuredFailure)
{
    FaultPlan plan = mustParse("io-transient:hmmer:x99");
    IsolationOptions opts = optsWith(plan);
    opts.maxAttempts = 2;
    auto out = runWorkloadsIsolated(baselineSkx(), {"hmmer"}, kInstr,
                                    kWarm, 1, opts);
    ASSERT_EQ(out.size(), 1u);
    ASSERT_FALSE(out[0].ok());
    EXPECT_EQ(out[0].status, RunStatus::Failed);
    EXPECT_EQ(out[0].attempts, 2u) << "bounded attempt count";
    ASSERT_TRUE(out[0].failure.has_value());
    EXPECT_EQ(out[0].failure->error.category,
              ErrorCategory::IoTransient);
}

TEST(IsolatedExecution, UnknownWorkloadFailsInItsOwnSlot)
{
    const std::vector<std::string> names = {"mcf", "nosuchkernel"};
    auto out = runWorkloadsIsolated(baselineSkx(), names, kInstr, kWarm,
                                    2, optsWith(kNoFaults));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].ok()) << "valid neighbour unaffected";
    ASSERT_FALSE(out[1].ok());
    EXPECT_EQ(out[1].status, RunStatus::Failed);
    ASSERT_TRUE(out[1].failure.has_value());
    EXPECT_EQ(out[1].failure->error.category, ErrorCategory::Config);
    EXPECT_NE(out[1].failure->error.message.find("nosuchkernel"),
              std::string::npos)
        << "error must name the offending workload";
}

TEST(IsolatedExecution, SummaryTalliesEveryStatus)
{
    FaultPlan plan =
        mustParse("trace-corrupt:mcf;hang:milc;io-transient:hmmer");
    const std::vector<std::string> names = {"mcf", "hmmer", "milc",
                                            "omnetpp"};
    auto out = runWorkloadsIsolated(withCatch(baselineSkx()), names,
                                    kInstr, kWarm, 4, optsWith(plan));
    CampaignSummary sum = summarizeOutcomes(out);
    EXPECT_EQ(sum.ok, 1u);
    EXPECT_EQ(sum.retried, 1u);
    EXPECT_EQ(sum.failed, 1u);
    EXPECT_EQ(sum.timedOut, 1u);
    EXPECT_EQ(sum.resumed, 0u);
    EXPECT_EQ(sum.total(), 4u);
    EXPECT_FALSE(sum.allOk());
}

/**
 * Disk-tier corruption injected through the reserved "chunk-store"
 * target: every chunk read from the cache dir is reported corrupt, so
 * the store must drop each record and regenerate deterministically.
 * The campaign itself never observes a fault — zero failed slots,
 * bitwise-identical results — because a corrupt cache entry is a
 * containable store-internal event, not a run-level error.
 */
TEST(IsolatedExecution, InjectedChunkStoreCorruptionRegeneratesBitwise)
{
    const std::vector<std::string> names = {"mcf", "hmmer", "omnetpp",
                                            "tpcc"};
    SimConfig cfg = withCatch(baselineSkx());
    auto baseline = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                         optsWith(kNoFaults));
    for (const auto &o : baseline)
        ASSERT_TRUE(o.ok()) << o.workload;

    const std::string dir =
        ::testing::TempDir() + "fault_inject_chunk_cache";
    std::filesystem::remove_all(dir);
    { // Warm the disk tier with intact records first.
        ChunkStore::Config store_cfg;
        store_cfg.diskDir = dir;
        ChunkStore warm(store_cfg);
        IsolationOptions opts = optsWith(kNoFaults);
        opts.store = &warm;
        auto warmup = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 4,
                                           opts);
        for (size_t i = 0; i < names.size(); ++i)
            expectBitwiseEqual(warmup[i].result, baseline[i].result);
    }

    FaultPlan plan = mustParse("trace-corrupt:chunk-store");
    ChunkStore::Config store_cfg;
    store_cfg.diskDir = dir;
    store_cfg.plan = &plan;
    ChunkStore poisoned(store_cfg);
    for (unsigned jobs : {1u, 8u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        IsolationOptions opts = optsWith(plan);
        opts.store = &poisoned;
        auto faulty = runWorkloadsIsolated(cfg, names, kInstr, kWarm,
                                           jobs, opts);
        for (size_t i = 0; i < names.size(); ++i) {
            ASSERT_TRUE(faulty[i].ok())
                << names[i]
                << ": cache corruption must stay store-internal";
            expectBitwiseEqual(faulty[i].result, baseline[i].result);
        }
    }
    EXPECT_GT(poisoned.stats().corrupt, 0u)
        << "the injected corruption was actually exercised";
    std::filesystem::remove_all(dir);
}

/**
 * Disk-tier corruption injected through the reserved "warm-state-store"
 * target: every warmed-state snapshot read from the cache dir fails its
 * checks, so the store must drop each record and the run must fall back
 * to functional warming. The campaign never observes a fault — zero
 * failed slots, bitwise-identical sampled results — because a corrupt
 * snapshot only costs the warm skip, never correctness.
 */
TEST(IsolatedExecution, InjectedWarmStateCorruptionRewarmsBitwise)
{
    const std::vector<std::string> names = {"mcf", "hmmer", "omnetpp",
                                            "tpcc"};
    SimConfig cfg = withCatch(baselineSkx());
    cfg.sampling.mode = SampleMode::Sampled;

    // Warm-state snapshots need a chunk-store-backed stream; one
    // memory-tier chunk store serves every phase of this test.
    ChunkStore::Config chunk_cfg;
    ChunkStore chunks(chunk_cfg);
    IsolationOptions base = optsWith(kNoFaults);
    base.store = &chunks;
    base.warmStore = nullptr; // baseline: no snapshot store attached
    auto baseline = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                         base);
    for (const auto &o : baseline)
        ASSERT_TRUE(o.ok()) << o.workload;

    const std::string dir =
        ::testing::TempDir() + "fault_inject_warm_cache";
    std::filesystem::remove_all(dir);
    { // Populate the disk tier with intact snapshots first.
        WarmStateStore::Config store_cfg;
        store_cfg.diskDir = dir;
        WarmStateStore warm(store_cfg);
        IsolationOptions opts = optsWith(kNoFaults);
        opts.store = &chunks;
        opts.warmStore = &warm;
        auto warmed = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 4,
                                           opts);
        for (size_t i = 0; i < names.size(); ++i)
            expectBitwiseEqual(warmed[i].result, baseline[i].result);
    }

    FaultPlan plan = mustParse("state-corrupt:warm-state-store");
    WarmStateStore::Config store_cfg;
    store_cfg.diskDir = dir;
    store_cfg.plan = &plan;
    WarmStateStore poisoned(store_cfg);
    for (unsigned jobs : {1u, 8u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        IsolationOptions opts = optsWith(plan);
        opts.store = &chunks;
        opts.warmStore = &poisoned;
        auto faulty = runWorkloadsIsolated(cfg, names, kInstr, kWarm,
                                           jobs, opts);
        for (size_t i = 0; i < names.size(); ++i) {
            ASSERT_TRUE(faulty[i].ok())
                << names[i]
                << ": snapshot corruption must stay store-internal";
            expectBitwiseEqual(faulty[i].result, baseline[i].result);
        }
    }
    EXPECT_GT(poisoned.stats().corrupt, 0u)
        << "the injected corruption was actually exercised";
    std::filesystem::remove_all(dir);
}

TEST(IsolatedExecution, RunStatusWireNamesRoundTrip)
{
    for (RunStatus s : {RunStatus::Ok, RunStatus::Retried,
                        RunStatus::Failed, RunStatus::TimedOut}) {
        auto back = runStatusFromName(runStatusName(s));
        ASSERT_TRUE(back.has_value()) << runStatusName(s);
        EXPECT_EQ(*back, s);
    }
    EXPECT_FALSE(runStatusFromName("exploded").has_value());
}

/**
 * MUST REMAIN THE LAST TEST IN THIS BINARY. FaultPlan::global() caches
 * the environment on first use; every other test here passes an
 * explicit plan precisely so this one can observe the first read. It
 * covers the env wiring end to end: CATCH_FAULT_INJECT reaches the
 * global plan, and the reserved "json-export" target makes the suite
 * exporter fail with a transient IO error.
 */
TEST(ZGlobalPlan, EnvSpecReachesGlobalPlanAndExporter)
{
    ASSERT_EQ(::setenv("CATCH_FAULT_INJECT",
                       "io-transient:json-export", 1), 0);
    const FaultPlan &plan = FaultPlan::global();
    ASSERT_TRUE(plan.enabled())
        << "global() must pick up CATCH_FAULT_INJECT (if this fails, "
           "an earlier test initialised the global plan)";
    EXPECT_TRUE(
        plan.shouldInject(FaultKind::IoTransient, "json-export"));
    EXPECT_FALSE(plan.shouldInject(FaultKind::IoTransient, "mcf"));

    ExperimentEnv env;
    env.names = {"mcf"};
    env.instrs = kInstr;
    env.warmup = kWarm;
    std::vector<SimResult> results(1);
    std::string path = ::testing::TempDir() + "injected_export.json";
    auto r = writeSuiteJson(path, baselineSkx(), env, results);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().category, ErrorCategory::IoTransient);
    EXPECT_NE(r.error().message.find("injected"), std::string::npos);
    ASSERT_EQ(::unsetenv("CATCH_FAULT_INJECT"), 0);
}

} // namespace
} // namespace catchsim
