/**
 * @file
 * Tests for the baseline prefetchers (L1 stride, L2 multi-stream).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "prefetch/stream_prefetcher.hh"
#include "prefetch/stride_prefetcher.hh"

namespace catchsim
{
namespace
{

TEST(Stride, LearnsAfterConfidence)
{
    StridePrefetcher pf;
    const Addr pc = 0x400010;
    Addr a = 0x10000;
    std::optional<Addr> out;
    for (int i = 0; i < 6; ++i) {
        out = pf.observe(pc, a);
        a += 64;
    }
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, a - 64 + 64);
    int64_t stride = 0;
    EXPECT_TRUE(pf.stableStride(pc, &stride));
    EXPECT_EQ(stride, 64);
}

TEST(Stride, RandomAddressesNeverTrain)
{
    StridePrefetcher pf;
    Rng rng(4);
    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(
            pf.observe(0x400010, rng.next() & ~7ULL).has_value());
}

TEST(Stride, StrideChangeResetsConfidence)
{
    StridePrefetcher pf;
    const Addr pc = 0x400010;
    Addr a = 0;
    for (int i = 0; i < 6; ++i, a += 8)
        pf.observe(pc, a);
    // Break the stride: confidence must drop before re-learning.
    EXPECT_FALSE(pf.observe(pc, a + 4096).has_value());
    int64_t stride = 0;
    // After several new-stride confirmations it re-learns.
    a = a + 4096;
    for (int i = 0; i < 10; ++i, a += 16)
        pf.observe(pc, a);
    ASSERT_TRUE(pf.stableStride(pc, &stride));
    EXPECT_EQ(stride, 16);
}

TEST(Stride, PerPcIsolation)
{
    StridePrefetcher pf;
    for (int i = 0; i < 8; ++i) {
        pf.observe(0x400010, 0x1000 + i * 8);
        pf.observe(0x400020, 0x90000 + i * 256);
    }
    int64_t s1 = 0, s2 = 0;
    ASSERT_TRUE(pf.stableStride(0x400010, &s1));
    ASSERT_TRUE(pf.stableStride(0x400020, &s2));
    EXPECT_EQ(s1, 8);
    EXPECT_EQ(s2, 256);
}

TEST(Stream, DetectsAscendingStream)
{
    StreamPrefetcher pf(64, 4);
    std::vector<Addr> out;
    Addr page = 0x200000;
    for (int line = 0; line < 3; ++line)
        pf.observe(page + line * 64, out);
    out.clear();
    pf.observe(page + 3 * 64, out); // candidates for this access only
    EXPECT_FALSE(out.empty());
    // Prefetches must be ahead of the last access, within the page.
    for (Addr a : out) {
        EXPECT_GT(a, page + 3 * 64);
        EXPECT_EQ(pageAddr(a), page);
    }
}

TEST(Stream, DetectsDescendingStream)
{
    StreamPrefetcher pf(64, 4);
    std::vector<Addr> out;
    Addr page = 0x200000;
    for (int line = 40; line > 37; --line)
        pf.observe(page + line * 64, out);
    out.clear();
    pf.observe(page + 37 * 64, out);
    ASSERT_FALSE(out.empty());
    EXPECT_LT(out.front(), page + 37 * 64);
}

TEST(Stream, DegreeBoundsCandidates)
{
    StreamPrefetcher pf(64, 3);
    std::vector<Addr> out;
    Addr page = 0x300000;
    for (int line = 0; line < 3; ++line)
        pf.observe(page + line * 64, out);
    out.clear();
    pf.observe(page + 3 * 64, out);
    EXPECT_LE(out.size(), 3u);
}

TEST(Stream, StaysInsidePage)
{
    StreamPrefetcher pf(64, 8);
    std::vector<Addr> out;
    Addr page = 0x400000;
    for (int line = 59; line < 64; ++line)
        pf.observe(page + line * 64, out);
    for (Addr a : out)
        EXPECT_EQ(pageAddr(a), page);
}

TEST(Stream, RandomAccessesProduceNothing)
{
    StreamPrefetcher pf(64, 4);
    std::vector<Addr> out;
    Rng rng(8);
    for (int i = 0; i < 100; ++i)
        pf.observe(rng.next() & ~63ULL, out);
    // Random pages rarely alias into a trained stream.
    EXPECT_LT(out.size(), 8u);
}

TEST(Stream, TracksManyPagesViaLru)
{
    StreamPrefetcher pf(4, 2); // tiny table
    std::vector<Addr> out;
    // Touch 8 pages round-robin; the table must keep functioning.
    for (int round = 0; round < 4; ++round)
        for (Addr p = 0; p < 8; ++p)
            pf.observe(p * kPageBytes + round * 64, out);
    SUCCEED();
}

} // namespace
} // namespace catchsim
