/**
 * @file
 * Tests for process-isolated campaign execution (sim/supervisor.hh)
 * and its wire protocol (sim/worker_proto.hh): supervised campaigns
 * are bitwise-identical to in-process ones at any worker count,
 * injected worker crashes/hangs/exec failures become typed Crashed
 * outcomes in their own slots, bounded restarts recover transient
 * crashes, and the frame decoder survives fuzzing (truncated frames,
 * garbage length prefixes, malformed payloads).
 *
 * This binary doubles as its own worker executable: main() dispatches
 * --worker to workerMain() before gtest initialises, exactly like the
 * real CLI, so the supervisor's default /proc/self/exe re-exec works
 * under test. Crash faults reach the forked workers through the
 * inherited CATCH_FAULT_INJECT environment; the parent always passes
 * an explicit (empty) plan so its own behaviour stays deterministic.
 *
 * ASan note: sanitizers intercept deadly signals and turn them into
 * reports + nonzero exits, so these tests assert the outcome *category*
 * (Crashed / HeartbeatTimeout / ExecFail), never the message text.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/fault_inject.hh"
#include "sim/configs.hh"
#include "sim/parallel_runner.hh"
#include "sim/supervisor.hh"
#include "sim/worker_proto.hh"
#include "sim_result_compare.hh"

#include <unistd.h>

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 20000;
constexpr uint64_t kWarm = 5000;

const FaultPlan kNoFaults;

/** Scoped CATCH_FAULT_INJECT for the workers this test forks. */
struct EnvGuard
{
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        EXPECT_EQ(setenv(name, value, 1), 0);
    }
    ~EnvGuard() { unsetenv(name_); }
    const char *name_;
};

IsolationOptions
fastOpts()
{
    IsolationOptions opts;
    opts.plan = &kNoFaults; // parent-side injection off by default
    opts.backoffMs = 0;
    opts.heartbeatMs = 50;
    opts.heartbeatTimeoutMs = 30000;
    return opts;
}

FaultPlan
mustParse(const std::string &spec)
{
    auto p = FaultPlan::parse(spec);
    EXPECT_TRUE(p.ok()) << spec;
    return p.ok() ? std::move(p).value() : FaultPlan{};
}

// ------------------------- wire protocol -------------------------

TEST(WorkerProto, FramesRoundTripThroughAPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::string payload = "{\"type\":\"heartbeat\"}";
    ASSERT_TRUE(writeFrame(fds[1], payload).ok());
    auto got = readFrame(fds[0]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), payload);
    EXPECT_TRUE(isHeartbeatFrame(got.value()));

    // EOF mid-stream is a crashed-category error, not UB.
    ASSERT_TRUE(writeFrame(fds[1], payload).ok());
    ::close(fds[1]);
    ASSERT_TRUE(readFrame(fds[0]).ok());
    auto eof = readFrame(fds[0]);
    ASSERT_FALSE(eof.ok());
    EXPECT_EQ(eof.error().category, ErrorCategory::Crashed);
    ::close(fds[0]);
}

TEST(WorkerProto, DecoderReassemblesByteByByte)
{
    const std::string payload = heartbeatPayload();
    std::string wire(4, '\0');
    wire[0] = char(payload.size()); // fits in one byte
    wire += payload;
    wire += wire; // two frames back to back

    FrameDecoder d;
    std::vector<std::string> frames;
    for (char c : wire) {
        d.feed(&c, 1);
        std::string out;
        while (d.next(&out) == 1)
            frames.push_back(out);
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0], payload);
    EXPECT_EQ(frames[1], payload);
    EXPECT_TRUE(d.error().empty());
}

TEST(WorkerProto, DecoderFuzzTruncationAndGarbage)
{
    // A truncated frame is "need more bytes", never an error or a
    // phantom frame.
    {
        FrameDecoder d;
        const std::string payload = heartbeatPayload();
        std::string wire(4, '\0');
        wire[0] = char(payload.size());
        wire += payload.substr(0, payload.size() - 3);
        d.feed(wire.data(), wire.size());
        std::string out;
        EXPECT_EQ(d.next(&out), 0);
        EXPECT_TRUE(d.error().empty());
    }
    // A garbage length prefix (e.g. a worker printing text to stdout)
    // latches a protocol error immediately and forever.
    {
        FrameDecoder d;
        const char noise[] = "Segmentation fault (core dumped)\n";
        d.feed(noise, sizeof(noise) - 1);
        std::string out;
        EXPECT_EQ(d.next(&out), -1);
        EXPECT_FALSE(d.error().empty());
        d.feed(noise, sizeof(noise) - 1); // ignored once latched
        EXPECT_EQ(d.next(&out), -1);
    }
    // An oversized-but-plausible length prefix is corruption too.
    {
        FrameDecoder d;
        char hdr[4] = {0, 0, 0, 0x7f}; // ~2 GB
        d.feed(hdr, 4);
        std::string out;
        EXPECT_EQ(d.next(&out), -1);
    }
}

TEST(WorkerProto, ResultParserRejectsMalformedPayloads)
{
    for (const char *bad :
         {"", "not json", "{\"type\":\"result\"}", "[1,2,3]",
          "{\"type\":\"request\"}",
          "{\"type\":\"result\",\"workload\":\"w\",\"config\":\"c\","
          "\"status\":\"ok\",\"attempts\":1}"}) {
        auto out = parseWorkerResult(bad);
        ASSERT_FALSE(out.ok()) << bad;
        EXPECT_EQ(out.error().category, ErrorCategory::Crashed) << bad;
    }
}

TEST(WorkerProto, ConfigJsonRoundTripsCanonically)
{
    SimConfig cfg = withCatch(baselineSkx());
    cfg.oracle.latAddLlc = 7;
    std::string json = configToJson(cfg);
    auto parsed = parseJson(json);
    ASSERT_TRUE(parsed.ok());
    auto back = configFromJson(parsed.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(configToJson(back.value()), json)
        << "round-trip must be canonical for the digest to be stable";
    EXPECT_EQ(configDigest(back.value()), configDigest(cfg));
}

TEST(WorkerProto, RequestRoundTripCarriesTheKnobs)
{
    SimConfig cfg = baselineSkx();
    IsolationOptions opts;
    opts.maxAttempts = 5;
    opts.budget.maxCycles = 123456;
    opts.heartbeatMs = 77;
    std::string payload =
        buildWorkerRequest(cfg, "mcf", kInstr, kWarm, 3, opts);
    auto req = parseWorkerRequest(payload);
    ASSERT_TRUE(req.ok()) << req.error().message;
    EXPECT_EQ(req.value().workload, "mcf");
    EXPECT_EQ(req.value().instrs, kInstr);
    EXPECT_EQ(req.value().warmup, kWarm);
    EXPECT_EQ(req.value().attemptBase, 3u);
    EXPECT_EQ(req.value().opts.maxAttempts, 5u);
    EXPECT_EQ(req.value().opts.budget.maxCycles, 123456u);
    EXPECT_EQ(req.value().opts.heartbeatMs, 77u);
    EXPECT_EQ(configToJson(req.value().cfg), configToJson(cfg));

    auto bad = parseWorkerRequest("{\"type\":\"request\"}");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().category, ErrorCategory::Config);
}

// --------------------- supervised execution ----------------------

/** The core guarantee: only the transport differs between modes. */
TEST(Supervisor, SupervisedMatchesInProcessBitwise)
{
    const std::vector<std::string> names = {"mcf", "hmmer", "omnetpp"};
    SimConfig cfg = withCatch(baselineSkx());
    auto inproc = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                       fastOpts());
    auto solo = runWorkloadsSupervised(cfg, names, kInstr, kWarm, 1,
                                       fastOpts());
    auto wide = runWorkloadsSupervised(cfg, names, kInstr, kWarm, 4,
                                       fastOpts());
    ASSERT_EQ(solo.size(), names.size());
    ASSERT_EQ(wide.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        ASSERT_TRUE(inproc[i].ok()) << names[i];
        ASSERT_TRUE(solo[i].ok())
            << names[i] << ": "
            << (solo[i].failure ? solo[i].failure->error.message : "");
        ASSERT_TRUE(wide[i].ok()) << names[i];
        EXPECT_EQ(solo[i].workload, names[i]) << "order not stable";
        EXPECT_EQ(solo[i].status, RunStatus::Ok);
        expectBitwiseEqual(inproc[i].result, solo[i].result);
        expectBitwiseEqual(inproc[i].result, wide[i].result);
    }
}

TEST(Supervisor, CrashedWorkerIsContainedToItsSlot)
{
    EnvGuard fault("CATCH_FAULT_INJECT", "crash-segv:mcf");
    const std::vector<std::string> names = {"mcf", "hmmer"};
    SimConfig cfg = baselineSkx();
    IsolationOptions opts = fastOpts();
    opts.maxAttempts = 2;
    auto out = runWorkloadsSupervised(cfg, names, kInstr, kWarm, 2,
                                      opts);
    ASSERT_EQ(out.size(), 2u);

    ASSERT_FALSE(out[0].ok());
    EXPECT_EQ(out[0].status, RunStatus::Crashed);
    EXPECT_EQ(out[0].failure->error.category, ErrorCategory::Crashed);
    EXPECT_EQ(out[0].attempts, 2u) << "crashes retry to maxAttempts";

    // The surviving slot is untouched by its neighbour's death.
    ASSERT_TRUE(out[1].ok());
    auto clean = runWorkloadsIsolated(cfg, {"hmmer"}, kInstr, kWarm, 1);
    ASSERT_TRUE(clean[0].ok());
    expectBitwiseEqual(clean[0].result, out[1].result);

    CampaignSummary sum = summarizeOutcomes(out);
    EXPECT_EQ(sum.crashed, 1u);
    EXPECT_FALSE(sum.allOk());
}

TEST(Supervisor, BoundedRestartRecoversATransientCrash)
{
    EnvGuard fault("CATCH_FAULT_INJECT", "crash-abort:mcf:x1");
    SimConfig cfg = baselineSkx();
    auto out = runWorkloadsSupervised(cfg, {"mcf"}, kInstr, kWarm, 1,
                                      fastOpts());
    ASSERT_TRUE(out[0].ok())
        << (out[0].failure ? out[0].failure->error.message : "");
    EXPECT_EQ(out[0].status, RunStatus::Retried)
        << "a restart that succeeds reports as Retried";
    EXPECT_EQ(out[0].attempts, 2u);

    auto clean = runWorkloadsIsolated(cfg, {"mcf"}, kInstr, kWarm, 1);
    ASSERT_TRUE(clean[0].ok());
    expectBitwiseEqual(clean[0].result, out[0].result);
}

TEST(Supervisor, OomKilledWorkerIsTypedCrashed)
{
    EnvGuard fault("CATCH_FAULT_INJECT", "oom:mcf");
    SimConfig cfg = baselineSkx();
    IsolationOptions opts = fastOpts();
    opts.maxAttempts = 1;
    auto out = runWorkloadsSupervised(cfg, {"mcf"}, kInstr, kWarm, 1,
                                      opts);
    ASSERT_FALSE(out[0].ok());
    EXPECT_EQ(out[0].status, RunStatus::Crashed);
    EXPECT_EQ(out[0].failure->error.category, ErrorCategory::Crashed);
}

TEST(Supervisor, ExecFailureIsTypedAndRetried)
{
    FaultPlan plan = mustParse("exec-fail:mcf");
    SimConfig cfg = baselineSkx();
    IsolationOptions opts = fastOpts();
    opts.plan = &plan; // exec-fail injects supervisor-side
    opts.maxAttempts = 2;
    auto out = runWorkloadsSupervised(cfg, {"mcf"}, kInstr, kWarm, 1,
                                      opts);
    ASSERT_FALSE(out[0].ok());
    EXPECT_EQ(out[0].status, RunStatus::Crashed);
    EXPECT_EQ(out[0].failure->error.category, ErrorCategory::ExecFail);
    EXPECT_EQ(out[0].attempts, 2u);

    // A bounded clause lets the restart through.
    FaultPlan once = mustParse("exec-fail:mcf:x1");
    opts.plan = &once;
    auto recovered = runWorkloadsSupervised(cfg, {"mcf"}, kInstr, kWarm,
                                            1, opts);
    ASSERT_TRUE(recovered[0].ok());
    EXPECT_EQ(recovered[0].status, RunStatus::Retried);
}

TEST(Supervisor, HeartbeatSilenceTripsTheWallClockWatchdog)
{
    EnvGuard fault("CATCH_FAULT_INJECT", "heartbeat-stall:mcf");
    SimConfig cfg = baselineSkx();
    IsolationOptions opts = fastOpts();
    opts.heartbeatTimeoutMs = 1000;
    auto out = runWorkloadsSupervised(cfg, {"mcf"}, kInstr, kWarm, 1,
                                      opts);
    ASSERT_FALSE(out[0].ok());
    EXPECT_EQ(out[0].status, RunStatus::Crashed);
    EXPECT_EQ(out[0].failure->error.category,
              ErrorCategory::HeartbeatTimeout);
    EXPECT_EQ(out[0].attempts, 1u)
        << "hangs are never restarted: the budget is already spent";
}

TEST(Supervisor, ForeignWorkerBinariesAreClassifiedNotTrusted)
{
    SimConfig cfg = baselineSkx();
    IsolationOptions opts = fastOpts();
    opts.maxAttempts = 1;

    // Prints "--worker" — a garbage length prefix on the wire.
    opts.workerBin = "/bin/echo";
    auto noisy = runWorkloadsSupervised(cfg, {"mcf"}, kInstr, kWarm, 1,
                                        opts);
    ASSERT_FALSE(noisy[0].ok());
    EXPECT_EQ(noisy[0].status, RunStatus::Crashed);
    EXPECT_EQ(noisy[0].failure->error.category, ErrorCategory::Crashed);

    // Exits nonzero without a result frame.
    opts.workerBin = "/bin/false";
    auto silent = runWorkloadsSupervised(cfg, {"mcf"}, kInstr, kWarm, 1,
                                         opts);
    ASSERT_FALSE(silent[0].ok());
    EXPECT_EQ(silent[0].status, RunStatus::Crashed);
    EXPECT_EQ(silent[0].failure->error.category, ErrorCategory::Crashed);

    // Cannot exec at all: the reserved exit-127 signature.
    opts.workerBin = "/nonexistent/no-such-binary";
    auto missing = runWorkloadsSupervised(cfg, {"mcf"}, kInstr, kWarm,
                                          1, opts);
    ASSERT_FALSE(missing[0].ok());
    EXPECT_EQ(missing[0].status, RunStatus::Crashed);
    EXPECT_EQ(missing[0].failure->error.category,
              ErrorCategory::ExecFail);
}

TEST(Supervisor, UnknownWorkloadFailsInItsSlot)
{
    // The worker executes executeContainedRun, so an unknown name is a
    // contained config failure — same contract as the in-process path.
    SimConfig cfg = baselineSkx();
    auto out = runWorkloadsSupervised(cfg, {"no-such-workload"}, kInstr,
                                      kWarm, 1, fastOpts());
    ASSERT_FALSE(out[0].ok());
    EXPECT_EQ(out[0].status, RunStatus::Failed);
    EXPECT_EQ(out[0].failure->error.category, ErrorCategory::Config);
}

} // namespace
} // namespace catchsim

/**
 * Like the real CLI, this binary understands --worker: the supervisor
 * under test re-execs /proc/self/exe, which is this test executable.
 * The dispatch must run before gtest sees the flag.
 */
int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--worker") == 0)
        return catchsim::workerMain();
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
