/**
 * @file
 * Bitwise reproducibility regression tests: the same (SimConfig,
 * workload, seed) must yield identical stats on every run — every
 * counter and every double, across representative kernel families
 * (pointer-chasing, streaming, branchy), both baseline and full-CATCH
 * configs, and for the MP simulator. Any nondeterminism here (an
 * unseeded RNG, iteration over pointer-keyed containers, uninitialised
 * state) would silently invalidate every paper figure and break the
 * parallel runner's determinism contract.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/configs.hh"
#include "sim/mp_simulator.hh"
#include "sim/simulator.hh"
#include "sim_result_compare.hh"
#include "trace/suite.hh"

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 35000;
constexpr uint64_t kWarm = 10000;

/** mcf = pointer chase, hpc.stream = streaming, gobmk = branchy. */
class DeterminismByKernel : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DeterminismByKernel, BaselineRunsAreBitwiseIdentical)
{
    SimResult a = runWorkload(baselineSkx(), GetParam(), kInstr, kWarm);
    SimResult b = runWorkload(baselineSkx(), GetParam(), kInstr, kWarm);
    expectBitwiseEqual(a, b);
}

TEST_P(DeterminismByKernel, FullCatchRunsAreBitwiseIdentical)
{
    // CATCH wires in the detector, the critical table and all four TACT
    // components — far more state that could go nondeterministic.
    SimConfig cfg = withCatch(noL2(baselineSkx(), 9728));
    SimResult a = runWorkload(cfg, GetParam(), kInstr, kWarm);
    SimResult b = runWorkload(cfg, GetParam(), kInstr, kWarm);
    expectBitwiseEqual(a, b);
}

INSTANTIATE_TEST_SUITE_P(RepresentativeKernels, DeterminismByKernel,
                         ::testing::Values("mcf", "hpc.stream", "gobmk"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (!isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

/** FNV-1a over the full JSON export: one number that moves if any
 *  counter or double moves. */
uint64_t
goldenHash(const SimResult &r)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : r.toJson()) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * The streamed trace pipeline must be a pure optimisation: for the same
 * (workload, config) the chunked stream and the materialize-everything
 * oracle yield bitwise-identical SimResults — same golden hash over the
 * whole JSON export, same counters. Covers both configs (baseline and
 * full CATCH, whose feeder reads the functional memory during the run).
 */
TEST_P(DeterminismByKernel, StreamedMatchesMaterializedOracleBaseline)
{
    auto wl_s = makeWorkload(GetParam());
    auto wl_m = makeWorkload(GetParam());
    Simulator streamed(baselineSkx(), TraceMode::Streamed);
    Simulator materialized(baselineSkx(), TraceMode::Materialized);
    SimResult a = streamed.run(*wl_s, kInstr, kWarm);
    SimResult b = materialized.run(*wl_m, kInstr, kWarm);
    EXPECT_EQ(goldenHash(a), goldenHash(b));
    expectBitwiseEqual(a, b);
}

TEST_P(DeterminismByKernel, StreamedMatchesMaterializedOracleFullCatch)
{
    SimConfig cfg = withCatch(noL2(baselineSkx(), 9728));
    auto wl_s = makeWorkload(GetParam());
    auto wl_m = makeWorkload(GetParam());
    Simulator streamed(cfg, TraceMode::Streamed);
    Simulator materialized(cfg, TraceMode::Materialized);
    SimResult a = streamed.run(*wl_s, kInstr, kWarm);
    SimResult b = materialized.run(*wl_m, kInstr, kWarm);
    EXPECT_EQ(goldenHash(a), goldenHash(b));
    expectBitwiseEqual(a, b);
}

TEST(Determinism, StreamedMatchesMaterializedAcrossQuickSuite)
{
    // Broader but shorter sweep under full CATCH: every quick-suite
    // kernel family, streamed vs oracle. Guards against a kernel whose
    // feeder-chased structures are (incorrectly) mutated after setup,
    // which only diverges once generation runs ahead of consumption.
    SimConfig cfg = withCatch(baselineSkx());
    for (const std::string &name : stQuickNames()) {
        auto wl_s = makeWorkload(name);
        auto wl_m = makeWorkload(name);
        Simulator streamed(cfg, TraceMode::Streamed);
        Simulator materialized(cfg, TraceMode::Materialized);
        SimResult a = streamed.run(*wl_s, 20000, 5000);
        SimResult b = materialized.run(*wl_m, 20000, 5000);
        EXPECT_EQ(goldenHash(a), goldenHash(b)) << name;
    }
}

TEST(Determinism, DifferentSeedVariantsDiffer)
{
    // Sanity check that the comparison has teeth: the "-2" suite
    // variants reseed the same kernel and must NOT reproduce the base
    // workload's counters.
    SimResult a = runWorkload(baselineSkx(), "mcf", kInstr, kWarm);
    SimResult b = runWorkload(baselineSkx(), "mcf-2", kInstr, kWarm);
    EXPECT_NE(a.core.cycles, b.core.cycles);
}

TEST(Determinism, MpRunsAreBitwiseIdentical)
{
    MpMix mix{"det.mix", {"mcf", "hpc.stream", "gobmk", "hmmer"}};
    std::array<double, 4> alone{};
    for (int c = 0; c < 4; ++c)
        alone[c] = runWorkload(baselineSkx(), mix.workloads[c], kInstr,
                               kWarm)
                       .ipc;
    MpSimulator sim_a(baselineSkx());
    MpSimulator sim_b(baselineSkx());
    MpResult a = sim_a.run(mix, kInstr, kWarm, alone);
    MpResult b = sim_b.run(mix, kInstr, kWarm, alone);
    EXPECT_EQ(a.weightedSpeedup, b.weightedSpeedup);
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(a.ipc[c], b.ipc[c]) << "core " << c;
}

TEST(Determinism, JsonExportIsStable)
{
    // The JSON document is byte-stable too (fixed field order, %.17g
    // doubles), so exports can be diffed across runs and machines.
    SimResult a = runWorkload(withCatch(baselineSkx()), "omnetpp",
                              kInstr, kWarm);
    SimResult b = runWorkload(withCatch(baselineSkx()), "omnetpp",
                              kInstr, kWarm);
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_FALSE(a.toJson().empty());
}

} // namespace
} // namespace catchsim
