/**
 * @file
 * Unit tests for the common utilities: bit helpers, RNG, saturating
 * counters, histograms, stats helpers, issue calendar and SimConfig
 * validation.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitutil.hh"
#include "common/env.hh"
#include "common/issue_calendar.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/sim_config.hh"
#include "common/stats.hh"

namespace catchsim
{
namespace
{

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(BitUtil, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtil, Mix64SpreadsBits)
{
    // Consecutive inputs must land far apart (used for table indexing).
    std::set<uint64_t> low_bits;
    for (uint64_t i = 0; i < 64; ++i)
        low_bits.insert(mix64(i) & 63);
    EXPECT_GT(low_bits.size(), 32u);
}

TEST(BitUtil, HashPcFitsWidth)
{
    for (uint64_t pc = 0x400000; pc < 0x400400; pc += 4)
        EXPECT_LT(hashPc(pc, 10), 1024u);
}

TEST(LineAddr, Alignment)
{
    EXPECT_EQ(lineAddr(0x1000), 0x1000u);
    EXPECT_EQ(lineAddr(0x103f), 0x1000u);
    EXPECT_EQ(lineAddr(0x1040), 0x1040u);
    EXPECT_EQ(pageAddr(0x1fff), 0x1000u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, PercentRoughlyCalibrated)
{
    Rng rng(3);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.percent(30);
    EXPECT_NEAR(hits, 3000, 300);
}

TEST(SatCounter, SaturatesBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.max(), 3u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_TRUE(c.saturated());
    EXPECT_EQ(c.value(), 3u);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, PredictTakenThreshold)
{
    SatCounter c(2, 1);
    EXPECT_FALSE(c.predictTaken());
    c.increment();
    EXPECT_TRUE(c.predictTaken());
}

TEST(Histogram, FractionAtLeast)
{
    Histogram h(10, 11); // buckets 0-9, 10-19, ..., 100+
    h.add(5);
    h.add(85);
    h.add(95);
    h.add(100);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(80), 0.75);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(0), 1.0);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(Histogram, ClampsOverflow)
{
    Histogram h(10, 5);
    h.add(1000000);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_DOUBLE_EQ(h.fractionAtLeast(40), 1.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.1, 1.1, 1.1}), 1.1, 1e-12);
}

TEST(Stats, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.0841), "+8.41%");
    EXPECT_EQ(formatPercent(-0.0779), "-7.79%");
}

TEST(IssueCalendar, RespectsPerCyclePorts)
{
    IssueCalendar cal(2);
    EXPECT_EQ(cal.schedule(10), 10u);
    EXPECT_EQ(cal.schedule(10), 10u);
    EXPECT_EQ(cal.schedule(10), 11u); // third in the same cycle spills
}

TEST(IssueCalendar, FutureReservationDoesNotBlockPresent)
{
    // The regression the calendar exists to prevent: an op scheduled far
    // in the future must not make the port look busy now.
    IssueCalendar cal(1);
    EXPECT_EQ(cal.schedule(1000), 1000u);
    EXPECT_EQ(cal.schedule(5), 5u);
    EXPECT_EQ(cal.schedule(6), 6u);
}

TEST(IssueCalendar, MultiSlotOccupancy)
{
    IssueCalendar cal(1);
    EXPECT_EQ(cal.schedule(0, 3), 0u); // occupies cycles 0,1,2
    EXPECT_EQ(cal.schedule(0), 3u);
}

TEST(IssueCalendar, WindowSlides)
{
    IssueCalendar cal(1, 64);
    cal.schedule(0);
    EXPECT_EQ(cal.schedule(1000), 1000u);
    // Old cycles left the window; a stale request clamps to the floor.
    Cycle c = cal.schedule(1);
    EXPECT_GE(c, 1000u - 64u);
}

TEST(SimConfig, DefaultsValidate)
{
    SimConfig cfg;
    EXPECT_TRUE(cfg.validate().ok());
    EXPECT_TRUE(cfg.hasL2);
    EXPECT_EQ(cfg.llc.numSets(), 8192u);
}

TEST(SimConfig, RemoveL2AdjustsWays)
{
    SimConfig cfg;
    cfg.removeL2(6656 * 1024);
    EXPECT_FALSE(cfg.hasL2);
    EXPECT_EQ(cfg.inclusion, InclusionPolicy::Nine);
    EXPECT_TRUE(isPowerOfTwo(cfg.llc.numSets()));
    EXPECT_EQ(cfg.llc.sizeBytes, 6656u * 1024u);
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(SimConfig, EnableCatchTurnsEverythingOn)
{
    SimConfig cfg;
    cfg.enableCatch();
    EXPECT_TRUE(cfg.criticality.enabled);
    EXPECT_TRUE(cfg.tact.cross && cfg.tact.deepSelf && cfg.tact.feeder &&
                cfg.tact.code);
    EXPECT_TRUE(cfg.validate().ok());
}

TEST(Logging, ConcatFormatsHeterogeneousArguments)
{
    EXPECT_EQ(detail::concat("jobs=", 8, ", frac=", 0.5), "jobs=8, frac=0.5");
}

TEST(Logging, WarnAndInformNeverStopTheRun)
{
    warn("common_test: expected warning, ignore (", 42, ")");
    inform("common_test: expected inform, ignore");
}

TEST(Env, TypedHelpersParseAndFallBack)
{
    // Single-threaded here, per the env.hh startup contract.
    ::setenv("CATCH_LINT_TEST_KNOB", "230", 1);
    EXPECT_EQ(envU64("CATCH_LINT_TEST_KNOB", 7), 230u);
    EXPECT_EQ(envString("CATCH_LINT_TEST_KNOB"), "230");
    EXPECT_FALSE(envFlag("CATCH_LINT_TEST_KNOB")) << "flag means '1...'";

    ::setenv("CATCH_LINT_TEST_KNOB", "12junk", 1);
    EXPECT_EQ(envU64("CATCH_LINT_TEST_KNOB", 7), 7u) << "strict parse";
    ::setenv("CATCH_LINT_TEST_KNOB", "1", 1);
    EXPECT_TRUE(envFlag("CATCH_LINT_TEST_KNOB"));

    ::unsetenv("CATCH_LINT_TEST_KNOB");
    EXPECT_EQ(envU64("CATCH_LINT_TEST_KNOB", 7), 7u);
    EXPECT_EQ(envString("CATCH_LINT_TEST_KNOB", "dflt"), "dflt");
    EXPECT_FALSE(envFlag("CATCH_LINT_TEST_KNOB"));
}

} // namespace
} // namespace catchsim
