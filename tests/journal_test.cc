/**
 * @file
 * Tests for the journaled checkpoint/resume layer (sim/journal.hh):
 * finished runs replay bitwise from <dir>/journal.jsonl without
 * re-execution, failures never satisfy a resume lookup, and the
 * half-written last line a killed process leaves behind is skipped
 * cleanly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_inject.hh"
#include "sim/configs.hh"
#include "sim/journal.hh"
#include "sim/parallel_runner.hh"
#include "sim_result_compare.hh"

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 20000;
constexpr uint64_t kWarm = 5000;

const FaultPlan kNoFaults;

/** Fresh scratch directory per test; removed on destruction. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &name)
        : path(::testing::TempDir() + "catchsim_" + name)
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

std::unique_ptr<SuiteJournal>
mustOpen(const std::string &dir)
{
    auto j = SuiteJournal::open(dir);
    EXPECT_TRUE(j.ok()) << (j.ok() ? "" : j.error().message);
    return j.ok() ? std::move(j).value() : nullptr;
}

IsolationOptions
optsWith(const FaultPlan &plan, SuiteJournal *journal)
{
    IsolationOptions opts;
    opts.plan = &plan;
    opts.journal = journal;
    opts.backoffMs = 0;
    return opts;
}

void
appendLine(const std::string &dir, const std::string &text)
{
    std::FILE *f = std::fopen((dir + "/journal.jsonl").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
    std::fclose(f);
}

TEST(SuiteJournal, ResumeReplaysFinishedRunsBitwise)
{
    ScratchDir dir("journal_resume");
    const std::vector<std::string> names = {"mcf", "hmmer"};
    SimConfig cfg = baselineSkx();

    auto j1 = mustOpen(dir.path);
    ASSERT_NE(j1, nullptr);
    EXPECT_EQ(j1->resumableCount(), 0u);
    auto first = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 2,
                                      optsWith(kNoFaults, j1.get()));
    ASSERT_EQ(first.size(), 2u);
    for (const auto &o : first) {
        ASSERT_TRUE(o.ok()) << o.workload;
        EXPECT_FALSE(o.resumed);
    }
    j1.reset(); // close the append handle before reopening

    auto j2 = mustOpen(dir.path);
    ASSERT_NE(j2, nullptr);
    EXPECT_EQ(j2->resumableCount(), 2u);
    auto second = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 2,
                                       optsWith(kNoFaults, j2.get()));
    ASSERT_EQ(second.size(), 2u);
    for (size_t i = 0; i < names.size(); ++i) {
        ASSERT_TRUE(second[i].ok());
        EXPECT_TRUE(second[i].resumed)
            << names[i] << " must replay, not re-execute";
        expectBitwiseEqual(first[i].result, second[i].result);
    }
    j2.reset();

    // Replayed outcomes are not re-appended: a twice-resumed campaign
    // still holds exactly the original records.
    auto j3 = mustOpen(dir.path);
    ASSERT_NE(j3, nullptr);
    EXPECT_EQ(j3->resumableCount(), 2u);
}

TEST(SuiteJournal, FailuresAreJournaledButNotResumable)
{
    ScratchDir dir("journal_failures");
    const std::vector<std::string> names = {"mcf", "hmmer"};
    SimConfig cfg = baselineSkx();
    FaultPlan corrupt_mcf = [] {
        auto p = FaultPlan::parse("trace-corrupt:mcf");
        EXPECT_TRUE(p.ok());
        return std::move(p).value();
    }();

    auto j1 = mustOpen(dir.path);
    ASSERT_NE(j1, nullptr);
    auto first = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 2,
                                      optsWith(corrupt_mcf, j1.get()));
    ASSERT_FALSE(first[0].ok());
    ASSERT_TRUE(first[1].ok());
    j1.reset();

    auto j2 = mustOpen(dir.path);
    ASSERT_NE(j2, nullptr);
    EXPECT_EQ(j2->resumableCount(), 1u)
        << "the failure record must not count as resumable";
    EXPECT_EQ(j2->find(cfg.name, "mcf", kInstr, kWarm), nullptr);
    EXPECT_NE(j2->find(cfg.name, "hmmer", kInstr, kWarm), nullptr);

    // Re-running without the fault re-executes only the failed run.
    auto second = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 2,
                                       optsWith(kNoFaults, j2.get()));
    ASSERT_TRUE(second[0].ok()) << "mcf must recover on the rerun";
    EXPECT_FALSE(second[0].resumed);
    EXPECT_TRUE(second[1].resumed);
    expectBitwiseEqual(first[1].result, second[1].result);
}

TEST(SuiteJournal, HalfWrittenLastRecordIsSkipped)
{
    ScratchDir dir("journal_torn");
    const std::vector<std::string> names = {"hmmer"};
    SimConfig cfg = baselineSkx();

    auto j1 = mustOpen(dir.path);
    ASSERT_NE(j1, nullptr);
    auto first = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 1,
                                      optsWith(kNoFaults, j1.get()));
    ASSERT_TRUE(first[0].ok());
    j1.reset();

    // The residue of a killed process: a record cut mid-write (no
    // trailing newline), plus a parseable line missing required keys.
    appendLine(dir.path, "{\"config\":\"x\"}\n");
    appendLine(dir.path, "{\"config\":\"" + cfg.name + "\",\"workl");

    auto j2 = mustOpen(dir.path);
    ASSERT_NE(j2, nullptr);
    EXPECT_EQ(j2->resumableCount(), 1u)
        << "damaged lines are skipped, valid ones kept";
    const SimResult *r = j2->find(cfg.name, "hmmer", kInstr, kWarm);
    ASSERT_NE(r, nullptr);
    expectBitwiseEqual(first[0].result, *r);
}

TEST(SuiteJournal, LookupKeyCoversTheWholeRunIdentity)
{
    ScratchDir dir("journal_keys");
    SimConfig cfg = baselineSkx();
    auto j1 = mustOpen(dir.path);
    ASSERT_NE(j1, nullptr);
    auto out = runWorkloadsIsolated(cfg, {"hmmer"}, kInstr, kWarm, 1,
                                    optsWith(kNoFaults, j1.get()));
    ASSERT_TRUE(out[0].ok());
    j1.reset();

    auto j2 = mustOpen(dir.path);
    ASSERT_NE(j2, nullptr);
    RunStatus st = RunStatus::Failed;
    EXPECT_NE(j2->find(cfg.name, "hmmer", kInstr, kWarm, &st), nullptr);
    EXPECT_EQ(st, RunStatus::Ok) << "journaled status is reported back";
    // Any key component changing means a different run: no replay.
    EXPECT_EQ(j2->find(cfg.name, "mcf", kInstr, kWarm), nullptr);
    EXPECT_EQ(j2->find("other-config", "hmmer", kInstr, kWarm), nullptr);
    EXPECT_EQ(j2->find(cfg.name, "hmmer", kInstr + 1, kWarm), nullptr);
    EXPECT_EQ(j2->find(cfg.name, "hmmer", kInstr, kWarm + 1), nullptr);
}

TEST(SuiteJournal, SecondCampaignOnALockedJournalFailsFast)
{
    ScratchDir dir("journal_lock");
    auto j1 = mustOpen(dir.path);
    ASSERT_NE(j1, nullptr);

    // Two campaigns appending to one journal would interleave records;
    // the second open must fail fast with a typed config error.
    auto j2 = SuiteJournal::open(dir.path);
    ASSERT_FALSE(j2.ok());
    EXPECT_EQ(j2.error().category, ErrorCategory::Config);
    EXPECT_NE(j2.error().message.find("locked"), std::string::npos);

    // Closing the first campaign releases the lock.
    j1.reset();
    auto j3 = SuiteJournal::open(dir.path);
    EXPECT_TRUE(j3.ok());
}

TEST(SuiteJournal, UnwritableDirectoryIsAConfigError)
{
    // A plain file where the journal directory should be: creation
    // fails and open() reports it instead of terminating the campaign.
    ScratchDir dir("journal_unwritable");
    ASSERT_TRUE(std::filesystem::create_directories(dir.path));
    std::string blocker = dir.path + "/blocker";
    std::FILE *f = std::fopen(blocker.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);

    auto j = SuiteJournal::open(blocker + "/nested");
    ASSERT_FALSE(j.ok());
    EXPECT_EQ(j.error().category, ErrorCategory::Config);
}

} // namespace
} // namespace catchsim
