/**
 * @file
 * Tests for the TACT components: trigger cache, cross learner,
 * deep-self distance logic, feeder identification/relation learning and
 * code runahead.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "mem/functional_memory.hh"
#include "trace/workload.hh"

#include "cache/hierarchy.hh"
#include "sim/configs.hh"
#include "tact/tact.hh"
#include "tact/tact_code.hh"
#include "tact/tact_cross.hh"
#include "tact/tact_feeder.hh"
#include "tact/tact_self.hh"
#include "tact/trigger_cache.hh"

namespace catchsim
{
namespace
{

TactConfig
defaultTact()
{
    TactConfig cfg;
    cfg.cross = cfg.deepSelf = cfg.feeder = cfg.code = true;
    return cfg;
}

// ------------------------- TriggerCache --------------------------

TEST(TriggerCache, RecordsFirstFourPcs)
{
    TriggerCache tc(defaultTact());
    for (Addr pc = 0; pc < 6; ++pc)
        tc.onLoad(0x400000 + pc * 4, 0x10000 + pc * 8);
    auto cands = tc.candidates(0x10000);
    ASSERT_EQ(cands.size(), 4u);
    EXPECT_EQ(cands[0], 0x400000u); // oldest first
    EXPECT_EQ(cands[3], 0x40000cu);
}

TEST(TriggerCache, DeduplicatesPcs)
{
    TriggerCache tc(defaultTact());
    for (int i = 0; i < 10; ++i)
        tc.onLoad(0x400000, 0x10000 + i * 8);
    EXPECT_EQ(tc.candidates(0x10000).size(), 1u);
}

TEST(TriggerCache, MissingPageIsEmpty)
{
    TriggerCache tc(defaultTact());
    EXPECT_TRUE(tc.candidates(0x7000000).empty());
}

// --------------------------- TactCross ---------------------------

TEST(TactCross, LearnsStableDeltaAndFires)
{
    std::vector<Addr> issued;
    TactCross cross(defaultTact(),
                    [&](Addr a, Cycle) { issued.push_back(a); });
    const Addr trig = 0x400010, targ = 0x400020;
    // Trigger at X, target at X+0x100, same 4 KB page, advancing.
    for (int i = 0; i < 64; ++i) {
        Addr base = 0x100000 + (i % 8) * 0x200;
        cross.onLoad(trig, base, i * 10, false);
        cross.onLoad(targ, base + 0x100, i * 10 + 5, true);
    }
    ASSERT_FALSE(issued.empty());
    // Fired prefetches are trigger address + 0x100.
    for (size_t i = 0; i < issued.size(); ++i)
        EXPECT_EQ(issued[i] & 0x1ff, 0x100u);
}

TEST(TactCross, UnstableDeltaNeverFires)
{
    std::vector<Addr> issued;
    TactCross cross(defaultTact(),
                    [&](Addr a, Cycle) { issued.push_back(a); });
    Rng rng(12);
    for (int i = 0; i < 256; ++i) {
        Addr base = 0x100000;
        cross.onLoad(0x400010, base + rng.below(32) * 64, i, false);
        cross.onLoad(0x400020, base + rng.below(32) * 64, i, true);
    }
    EXPECT_TRUE(issued.empty());
}

TEST(TactCross, DropTargetStopsFiring)
{
    std::vector<Addr> issued;
    TactCross cross(defaultTact(),
                    [&](Addr a, Cycle) { issued.push_back(a); });
    for (int i = 0; i < 64; ++i) {
        Addr base = 0x100000 + (i % 8) * 0x200;
        cross.onLoad(0x400010, base, i, false);
        cross.onLoad(0x400020, base + 0x80, i, true);
    }
    ASSERT_FALSE(issued.empty());
    cross.dropTarget(0x400020);
    size_t n = issued.size();
    for (int i = 0; i < 16; ++i)
        cross.onLoad(0x400010, 0x100000 + i * 0x200, 1000 + i, false);
    EXPECT_EQ(issued.size(), n);
}

// --------------------------- TactSelf ----------------------------

TEST(TactSelf, DeepPrefetchAtDistance)
{
    TactConfig cfg = defaultTact();
    std::vector<Addr> issued;
    TactSelf self(
        cfg,
        [](Addr, int64_t *stride) {
            *stride = 64;
            return true;
        },
        [&](Addr a, Cycle) { issued.push_back(a); });
    Addr a = 0x200000;
    for (int i = 0; i < 200; ++i, a += 64)
        self.onCriticalLoad(0x400010, a, i * 10);
    ASSERT_FALSE(issued.empty());
    // Deep prefetches land well beyond distance 1.
    Addr last_pf = issued.back();
    Addr last_access = a - 64;
    EXPECT_GT(last_pf, last_access + 64);
    EXPECT_LE(last_pf, last_access + 64 * cfg.deepMaxDistance);
}

TEST(TactSelf, NoStrideNoPrefetch)
{
    std::vector<Addr> issued;
    TactSelf self(
        defaultTact(),
        [](Addr, int64_t *) { return false; },
        [&](Addr a, Cycle) { issued.push_back(a); });
    for (int i = 0; i < 100; ++i)
        self.onCriticalLoad(0x400010, 0x200000 + i * 64, i);
    EXPECT_TRUE(issued.empty());
}

TEST(TactSelf, ShortRunsShrinkSafeLength)
{
    // Stride breaks every 3 instances: the learner must throttle deep
    // prefetching (the paper's "safe length" guard).
    Addr cur = 0x200000;
    std::vector<int64_t> distances; // in lines ahead of the access
    TactSelf self(
        defaultTact(),
        [](Addr, int64_t *stride) {
            *stride = 64;
            return true;
        },
        [&](Addr a, Cycle) {
            distances.push_back((static_cast<int64_t>(a) -
                                 static_cast<int64_t>(cur)) /
                                64);
        });
    for (int i = 0; i < 300; ++i) {
        self.onCriticalLoad(0x400010, cur, i);
        cur += (i % 3 == 2) ? 1 << 20 : 64; // break the run every 3rd
    }
    // Any issued prefetches must be at conservative distances compared
    // to the 16-line maximum.
    for (int64_t d : distances)
        EXPECT_LE(d, 8);
}

// -------------------------- TactFeeder ---------------------------

TEST(TactFeeder, IdentifiesFeederLearnsRelationAndChases)
{
    TactConfig cfg = defaultTact();
    cfg.feederDepth = 4;
    std::vector<Addr> issued;
    FunctionalMemory mem;
    // Feeder stream: addr 0x100000 + i*8 holds pointer values
    // 0x50000000 + i*128; target reads value + 16.
    for (int i = 0; i < 600; ++i)
        mem.write(0x100000 + i * 8, 0x50000000 + i * 128);
    TactFeeder feeder(
        cfg, 16,
        [](Addr, int64_t *stride) {
            *stride = 8;
            return true;
        },
        [&](Addr a, Cycle now) {
            issued.push_back(a);
            return now + 20;
        },
        [](Addr, Cycle now) { return now + 5; },
        [&](Addr a) { return mem.read(a); });

    for (int i = 0; i < 64; ++i) {
        Addr f_addr = 0x100000 + i * 8;
        uint64_t value = mem.read(f_addr);
        // Program order: feeder load retires, then target load.
        MicroOp fld;
        fld.pc = 0x400010;
        fld.cls = OpClass::Load;
        fld.dst = r1;
        fld.memAddr = f_addr;
        fld.value = value;
        feeder.onRetire(fld);
        feeder.onLoadComplete(0x400010, f_addr, value, i * 10);

        MicroOp tld;
        tld.pc = 0x400020;
        tld.cls = OpClass::Load;
        tld.dst = r2;
        tld.src[0] = r1;
        tld.memAddr = value + 16;
        feeder.onCriticalLoad(tld, i * 10 + 3);
        feeder.onRetire(tld);
    }
    ASSERT_FALSE(issued.empty());
    // Chained target prefetches: pointer value + 16 for future feeder
    // instances.
    bool chased = false;
    for (Addr a : issued)
        chased |= (a >= 0x50000000 && (a & 0x7f) == 16);
    EXPECT_TRUE(chased);
    EXPECT_GT(feeder.feederRunaheads(), 0u);
}

TEST(TactFeeder, SelfFeedingChaseIsExhausted)
{
    TactConfig cfg = defaultTact();
    std::vector<Addr> issued;
    TactFeeder feeder(
        cfg, 16, [](Addr, int64_t *) { return false; },
        [&](Addr a, Cycle now) {
            issued.push_back(a);
            return now;
        },
        [](Addr, Cycle now) { return now; }, [](Addr) { return 0ULL; });
    for (int i = 0; i < 32; ++i) {
        MicroOp ld;
        ld.pc = 0x400010;
        ld.cls = OpClass::Load;
        ld.dst = r1;
        ld.src[0] = r1; // p = *p
        ld.memAddr = 0x100000 + i * 64;
        feeder.onRetire(ld);
        feeder.onCriticalLoad(ld, i);
    }
    EXPECT_TRUE(issued.empty());
}

TEST(TactFeeder, RegisterTrackingPropagatesThroughAlu)
{
    // load -> alu -> critical load: the feeder is the original load.
    TactConfig cfg = defaultTact();
    std::vector<Addr> issued;
    FunctionalMemory mem;
    for (int i = 0; i < 600; ++i)
        mem.write(0x100000 + i * 8, 0x50000000 + i * 64);
    TactFeeder feeder(
        cfg, 16,
        [](Addr, int64_t *stride) {
            *stride = 8;
            return true;
        },
        [&](Addr a, Cycle now) {
            issued.push_back(a);
            return now;
        },
        [](Addr, Cycle now) { return now; },
        [&](Addr a) { return mem.read(a); });
    for (int i = 0; i < 64; ++i) {
        Addr f_addr = 0x100000 + i * 8;
        uint64_t v = mem.read(f_addr);
        MicroOp fld;
        fld.pc = 0x400010;
        fld.cls = OpClass::Load;
        fld.dst = r1;
        fld.memAddr = f_addr;
        feeder.onRetire(fld);
        feeder.onLoadComplete(0x400010, f_addr, v, i);
        MicroOp alu;
        alu.pc = 0x400014;
        alu.cls = OpClass::Alu;
        alu.dst = r3;
        alu.src[0] = r1;
        feeder.onRetire(alu);
        MicroOp tld;
        tld.pc = 0x400020;
        tld.cls = OpClass::Load;
        tld.dst = r2;
        tld.src[0] = r3; // via the ALU
        tld.memAddr = v; // scale 1, base 0
        feeder.onCriticalLoad(tld, i);
        feeder.onRetire(tld);
    }
    EXPECT_FALSE(issued.empty());
}

// ----------------- TactSelf boundary behaviour -------------------

TEST(TactSelf, DeepDistanceIsClampedAtSixteenLines)
{
    // Paper guards: safe run length learned up to 32, prefetch distance
    // clamped to deepMaxDistance (16 lines). Drive a long perfect
    // stride so the safe length saturates at its cap, and verify every
    // issued distance stays within (1, 16] with the clamp actually
    // reached.
    TactConfig cfg = defaultTact();
    ASSERT_EQ(cfg.deepMaxDistance, 16u);
    ASSERT_EQ(cfg.safeLengthCap, 32u);
    Addr cur = 0x300000;
    std::vector<int64_t> distances;
    TactSelf self(
        cfg,
        [](Addr, int64_t *stride) {
            *stride = 64;
            return true;
        },
        [&](Addr a, Cycle) {
            distances.push_back((static_cast<int64_t>(a) -
                                 static_cast<int64_t>(cur)) /
                                64);
        });
    // > 40 wraparounds of the 32-instance cap: plenty for safeLength to
    // climb from its initial 4 to the cap.
    for (int i = 0; i < 32 * 45; ++i, cur += 64)
        self.onCriticalLoad(0x400010, cur, i);
    ASSERT_FALSE(distances.empty());
    int64_t max_d = 0;
    for (int64_t d : distances) {
        EXPECT_GT(d, 1) << "distance 1 is the baseline prefetcher's job";
        EXPECT_LE(d, 16) << "deepMaxDistance clamp violated";
        max_d = std::max(max_d, d);
    }
    // The clamp must actually engage: with the safe length at 32, the
    // headroom exceeds 16 for much of each run.
    EXPECT_EQ(max_d, 16);
    // The run-length guard throttles: near each cap wraparound the
    // remaining headroom dips below 2, so not every instance issues.
    EXPECT_LT(distances.size(), static_cast<size_t>(32 * 45));
}

TEST(TactSelf, RunBreakAtSafeLengthBoundaryKeepsDistancesSafe)
{
    // Runs that break after exactly safeLength instances are the
    // boundary the guard learns: issued distances must never outrun
    // the observed run length.
    TactConfig cfg = defaultTact();
    Addr cur = 0x300000;
    std::vector<int64_t> distances;
    TactSelf self(
        cfg,
        [](Addr, int64_t *stride) {
            *stride = 64;
            return true;
        },
        [&](Addr a, Cycle) {
            distances.push_back((static_cast<int64_t>(a) -
                                 static_cast<int64_t>(cur)) /
                                64);
        });
    for (int i = 0; i < 400; ++i) {
        self.onCriticalLoad(0x400010, cur, i);
        cur += (i % 8 == 7) ? 1 << 20 : 64; // break every 8th instance
    }
    for (int64_t d : distances)
        EXPECT_LE(d, 8) << "prefetch ran past the learned run length";
}

// --------------- TriggerCache pressure behaviour -----------------

TEST(TriggerCache, FifthDistinctPcOnPageIsNotRecorded)
{
    // A 4 KB page that sees more than four distinct load PCs keeps only
    // its first four (first-touch order is the paper's trigger
    // heuristic); later PCs must neither displace them nor grow the
    // candidate list.
    TriggerCache tc(defaultTact());
    for (Addr pc = 0; pc < 12; ++pc)
        tc.onLoad(0x400000 + pc * 4, 0x20000 + pc * 16);
    auto cands = tc.candidates(0x20000);
    ASSERT_EQ(cands.size(), 4u);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(cands[i], 0x400000u + i * 4) << "slot " << i;
}

TEST(TriggerCache, CapacityPressureEvictsColdPages)
{
    // 64 entries total (8 sets x 8 ways): touching many more distinct
    // pages than that must LRU-evict the earliest, while a page kept
    // hot retains its (full, first-four) PC set.
    TactConfig cfg = defaultTact();
    ASSERT_EQ(cfg.triggerCacheSets * cfg.triggerCacheWays, 64u);
    TriggerCache tc(cfg);
    const Addr hot = 0x1000000;
    for (Addr pc = 0; pc < 6; ++pc) // > 4 distinct PCs on the hot page
        tc.onLoad(0x400000 + pc * 4, hot + pc * 8);
    for (int p = 0; p < 256; ++p) {
        tc.onLoad(0x500000, 0x2000000 + static_cast<Addr>(p) * 4096);
        tc.onLoad(0x400000, hot + p); // keep the hot page recent
    }
    EXPECT_TRUE(tc.candidates(0x2000000).empty())
        << "cold page survived 255 later insertions";
    auto cands = tc.candidates(hot);
    ASSERT_EQ(cands.size(), 4u) << "hot page lost under pressure";
    EXPECT_EQ(cands[0], 0x400000u);
    EXPECT_EQ(cands[3], 0x40000cu);
}

// --------------------------- TactCode ----------------------------

TEST(TactCode, PrefetchesUpcomingLines)
{
    TactConfig cfg = defaultTact();
    std::vector<Addr> lines;
    TactCode code(
        cfg, [&](Addr line, Cycle) { lines.push_back(line); },
        [](const MicroOp &) { return false; });
    std::vector<MicroOp> ops(64);
    for (size_t i = 0; i < ops.size(); ++i) {
        ops[i].pc = 0x400000 + i * 32; // a new line every other op
        ops[i].cls = OpClass::Alu;
    }
    code.onCodeStall(makeView(ops), 0, 100);
    ASSERT_FALSE(lines.empty());
    EXPECT_LE(lines.size(), cfg.codeRunaheadLines);
    for (Addr l : lines) {
        EXPECT_EQ(l % 64, 0u);
        EXPECT_GT(l, lineAddr(ops[0].pc));
    }
}

TEST(TactCode, StopsAtMispredictedBranch)
{
    TactConfig cfg = defaultTact();
    std::vector<Addr> lines;
    TactCode code(
        cfg, [&](Addr line, Cycle) { lines.push_back(line); },
        [](const MicroOp &op) { return op.isBranch(); });
    std::vector<MicroOp> ops(64);
    for (size_t i = 0; i < ops.size(); ++i) {
        ops[i].pc = 0x400000 + i * 64;
        ops[i].cls = i == 2 ? OpClass::Branch : OpClass::Alu;
    }
    code.onCodeStall(makeView(ops), 0, 100);
    EXPECT_LE(lines.size(), 2u);
}

// --------------------------- Tact facade -------------------------

TEST(TactFacade, RoutesEventsAndAggregatesStats)
{
    SimConfig sim = baselineSkx();
    sim.enableCatch();
    CacheHierarchy hierarchy(sim);
    FunctionalMemory mem;
    Tact tact(sim.tact, 0, hierarchy, [](Addr) { return true; }, &mem);

    // A strided critical load trains cross/deep-self through the
    // facade's dispatch/complete/retire routing without crashing and
    // with purely deterministic state.
    MicroOp op;
    op.cls = OpClass::Load;
    op.dst = r3;
    for (uint64_t i = 0; i < 256; ++i) {
        op.pc = 0x400100;
        op.memAddr = 0x20000 + i * 64;
        Cycle now = 1000 + i * 20;
        tact.onLoadDispatch(op, now);
        tact.onLoadComplete(op, now + 10);
        tact.onRetire(op);
    }

    // Code-runahead counters must flow through the facade's stats().
    std::vector<MicroOp> fetch(16);
    for (size_t i = 0; i < fetch.size(); ++i) {
        fetch[i].pc = 0x500000 + i * 4;
        fetch[i].cls = OpClass::Alu;
    }
    TactStats before = tact.stats();
    tact.onCodeStall(makeView(fetch), 0, 50000,
                     [](const MicroOp &) { return false; });
    TactStats after = tact.stats();
    EXPECT_EQ(after.codeStalls, before.codeStalls + 1);
    EXPECT_GE(after.codeLines, before.codeLines);
}

TEST(TactFacade, DisabledComponentsReportZeroStats)
{
    SimConfig sim = baselineSkx();
    sim.tact = TactConfig{}; // everything off
    CacheHierarchy hierarchy(sim);
    Tact tact(sim.tact, 0, hierarchy, [](Addr) { return false; }, nullptr);

    MicroOp op;
    op.cls = OpClass::Load;
    op.pc = 0x400100;
    op.memAddr = 0x30000;
    tact.onLoadDispatch(op, 10);
    tact.onLoadComplete(op, 20);
    tact.onRetire(op);

    TactStats s = tact.stats();
    EXPECT_EQ(s.crossIssued, 0u);
    EXPECT_EQ(s.deepIssued, 0u);
    EXPECT_EQ(s.feederIssued, 0u);
    EXPECT_EQ(s.codeStalls, 0u);
}

} // namespace
} // namespace catchsim
