/**
 * @file
 * Tests for the trace layer: emitter semantics, workload determinism and
 * suite-wide structural properties (parameterised over every workload in
 * the 70-entry ST list).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/emitter.hh"
#include "trace/kernels/kernels.hh"
#include "trace/suite.hh"
#include "trace/workload.hh"

namespace catchsim
{
namespace
{

TEST(Emitter, StopsAtLimit)
{
    FunctionalMemory mem;
    std::vector<MicroOp> ops;
    Emitter em(mem, ops, 10);
    for (int i = 0; i < 100; ++i)
        em.alu(r0, {r0});
    EXPECT_EQ(ops.size(), 10u);
    EXPECT_TRUE(em.done());
}

TEST(Emitter, RecordsDataflowValuesAndPcs)
{
    FunctionalMemory mem;
    std::vector<MicroOp> ops;
    Emitter em(mem, ops, 8);
    mem.write(0x1000, 42);

    em.setPc(0x400000);
    uint64_t loaded = em.load(r1, {}, 0x1000);
    em.alu(r2, {r1});
    em.store({r1, r2}, 0x1008, 7);
    em.branch(true, 0x400000, {r2});

    EXPECT_EQ(loaded, 42u);
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_TRUE(ops[0].isLoad());
    EXPECT_EQ(ops[0].pc, 0x400000u);
    EXPECT_EQ(ops[0].value, 42u);
    EXPECT_EQ(ops[0].dst, r1);
    EXPECT_EQ(ops[1].src[0], r1);
    EXPECT_TRUE(ops[2].isStore());
    EXPECT_EQ(mem.read(0x1008), 7u) << "stores reach functional memory";
    EXPECT_TRUE(ops[3].isBranch());
    EXPECT_TRUE(ops[3].taken);
    EXPECT_EQ(ops[3].target, 0x400000u);
}

TEST(Kernels, DirectConstructionGeneratesFullTrace)
{
    StreamTriadLike triad("triad-direct", Category::Hpc, 7, 4096, 2);
    Trace t = triad.generate(5000);
    EXPECT_EQ(triad.name(), "triad-direct");
    EXPECT_GE(t.ops.size(), 5000u);
    size_t loads = 0;
    for (const MicroOp &op : t.ops)
        loads += op.isLoad();
    EXPECT_GT(loads, 0u);
}

TEST(Emitter, PcAdvancesByFour)
{
    FunctionalMemory mem;
    std::vector<MicroOp> ops;
    Emitter em(mem, ops, 10);
    em.setPc(0x400000);
    em.alu(r1, {});
    em.alu(r2, {r1});
    EXPECT_EQ(ops[0].pc, 0x400000u);
    EXPECT_EQ(ops[1].pc, 0x400004u);
}

TEST(Emitter, LoadReturnsFunctionalValue)
{
    FunctionalMemory mem;
    mem.write(0x10000, 77);
    std::vector<MicroOp> ops;
    Emitter em(mem, ops, 10);
    uint64_t v = em.load(r1, {r0}, 0x10000);
    EXPECT_EQ(v, 77u);
    EXPECT_EQ(ops[0].value, 77u);
    EXPECT_EQ(ops[0].memAddr, 0x10000u);
    EXPECT_EQ(ops[0].dst, r1);
    EXPECT_EQ(ops[0].src[0], r0);
}

TEST(Emitter, StoreWritesFunctionalMemory)
{
    FunctionalMemory mem;
    std::vector<MicroOp> ops;
    Emitter em(mem, ops, 10);
    em.store({r1}, 0x2000, 99);
    EXPECT_EQ(mem.read(0x2000), 99u);
    EXPECT_TRUE(ops[0].isStore());
}

TEST(Emitter, TakenBranchMovesPc)
{
    FunctionalMemory mem;
    std::vector<MicroOp> ops;
    Emitter em(mem, ops, 10);
    em.setPc(0x400100);
    em.branch(true, 0x400000);
    em.alu(r1, {});
    EXPECT_EQ(ops[1].pc, 0x400000u);
    EXPECT_EQ(ops[0].nextPc(), 0x400000u);
}

TEST(Emitter, NotTakenBranchFallsThrough)
{
    FunctionalMemory mem;
    std::vector<MicroOp> ops;
    Emitter em(mem, ops, 10);
    em.setPc(0x400100);
    em.branch(false, 0x400000);
    em.alu(r1, {});
    EXPECT_EQ(ops[1].pc, 0x400104u);
}

TEST(Suite, SeventyWorkloads)
{
    EXPECT_EQ(stSuiteNames().size(), 70u);
}

TEST(Suite, QuickListIsSubset)
{
    auto all = stSuiteNames();
    std::set<std::string> names(all.begin(), all.end());
    for (const auto &q : stQuickNames())
        EXPECT_TRUE(names.count(q)) << q;
}

TEST(Suite, MpMixesAreValid)
{
    auto mixes = mpMixes();
    EXPECT_EQ(mixes.size(), 60u);
    auto all = stSuiteNames();
    std::set<std::string> names(all.begin(), all.end());
    for (const auto &m : mixes)
        for (const auto &w : m.workloads)
            EXPECT_TRUE(names.count(w)) << m.name << ": " << w;
}

TEST(Suite, UnknownWorkloadDies)
{
    EXPECT_DEATH(makeWorkload("no-such-workload"), "unknown workload");
}

TEST(Workload, GenerationIsDeterministic)
{
    auto w1 = makeWorkload("mcf");
    auto w2 = makeWorkload("mcf");
    Trace t1 = w1->generate(5000);
    Trace t2 = w2->generate(5000);
    ASSERT_EQ(t1.ops.size(), t2.ops.size());
    for (size_t i = 0; i < t1.ops.size(); ++i) {
        EXPECT_EQ(t1.ops[i].pc, t2.ops[i].pc);
        EXPECT_EQ(t1.ops[i].memAddr, t2.ops[i].memAddr);
        EXPECT_EQ(t1.ops[i].value, t2.ops[i].value);
    }
}

// ------------------------------------------------------------------
// Property tests over every workload in the suite.
// ------------------------------------------------------------------

class SuiteProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteProperty, TraceIsWellFormed)
{
    auto wl = makeWorkload(GetParam());
    Trace trace = wl->generate(20000);
    ASSERT_EQ(trace.ops.size(), 20000u);

    uint64_t loads = 0, branches = 0;
    std::set<Addr> pcs;
    for (size_t i = 0; i < trace.ops.size(); ++i) {
        const MicroOp &op = trace.ops[i];
        pcs.insert(op.pc);
        EXPECT_EQ(op.pc % 4, 0u);
        if (op.isLoad()) {
            ++loads;
            EXPECT_NE(op.memAddr, 0u);
            EXPECT_GE(op.dst, 0);
        }
        if (op.isBranch()) {
            ++branches;
            if (op.taken) {
                EXPECT_NE(op.target, 0u);
            }
        }
        for (int8_t s : op.src)
            EXPECT_LT(s, 16);
        EXPECT_LT(op.dst, 16);
    }
    // Every kernel must exercise loads and control flow.
    EXPECT_GT(loads, 100u) << GetParam(); // server kernels are code-heavy
    EXPECT_GT(branches, 100u) << GetParam();
    // Stable PCs: the static footprint must be much smaller than the
    // dynamic stream (PC-indexed hardware relies on this).
    EXPECT_LT(pcs.size(), trace.ops.size() / 3) << GetParam();
}

class PointerWorkloads : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PointerWorkloads, LoadValuesMatchFinalMemory)
{
    // The feeder reads chased pointers from the final functional-memory
    // image; for the pointer-structured kernels (whose structures are
    // written only during setup), the image must agree with the values
    // the loads observed. Kernels that overwrite their own inputs
    // (butterfly, streams) legitimately diverge and are not tested.
    auto wl = makeWorkload(GetParam());
    Trace trace = wl->generate(10000);
    uint64_t loads = 0, matched = 0;
    for (const auto &op : trace.ops) {
        if (!op.isLoad())
            continue;
        ++loads;
        matched += trace.mem->read(op.memAddr) == op.value;
    }
    EXPECT_GT(matched, loads * 3 / 4) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Pointerish, PointerWorkloads,
                         ::testing::Values("mcf", "omnetpp", "xalancbmk",
                                           "bioinformatics", "namd",
                                           "sysmark-excel", "browser"));

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SuiteProperty,
                         ::testing::ValuesIn(stSuiteNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

} // namespace
} // namespace catchsim
