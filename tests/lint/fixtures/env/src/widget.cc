#include "widget.hh"
#include <cstdlib>
namespace fx { int widget() { return std::getenv("X") != nullptr; } }
