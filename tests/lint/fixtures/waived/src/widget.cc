#include "widget.hh"
#include <cstdlib>
namespace fx {
int widget()
{
    return std::rand(); // catch-lint: allow(determinism)
}
}
