#ifndef WIDGET_HH_
#define WIDGET_HH_
namespace fx { int widget(int v); }
#endif
