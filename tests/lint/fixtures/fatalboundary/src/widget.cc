#include "widget.hh"
#include <cstdlib>
namespace fx {
int widget(int v)
{
    if (v < 0)
        std::exit(2);
    if (v > 100)
        CATCHSIM_FATAL("widget value out of range: ", v);
    return v;
}
}
