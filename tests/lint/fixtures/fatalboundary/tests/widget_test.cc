#include "widget.hh"
int main() { return 0; }
