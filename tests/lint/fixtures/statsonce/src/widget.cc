#include "widget.hh"
struct W {
    void open() {}
    void close() {}
    void field(const char *, int) {}
};
namespace fx {
int widget()
{
    W w;
    w.open();
    w.field("hits", 1);
    w.field("misses", 2);
    w.field("hits", 3);
    w.close();
    return 0;
}
}
