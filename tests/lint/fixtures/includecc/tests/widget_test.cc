#include "widget.hh"
#include "../src/impl.cc"
int main() { return 0; }
