namespace fx { int impl() { return 9; } }
