#include "widget.hh"
#include "impl.cc"
namespace fx { int widget() { return impl(); } }
