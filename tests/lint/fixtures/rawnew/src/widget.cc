#include "widget.hh"
namespace fx {
int widget()
{
    int *p = new int(3);
    int v = *p;
    delete p;
    return v;
}
}
