#include "widget.hh"
namespace fx {
int widget()
{
    // Stale inline waiver: nothing on this line violates determinism.
    int x = 41 + 1; // catch-lint: allow(determinism)
    return x;
}
}
