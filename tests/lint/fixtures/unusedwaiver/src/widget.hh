#pragma once
namespace fx {
int widget();
}
