#include "widget.hh"
int main() { return fx::widget() == 42 ? 0 : 1; }
