#include "widget.hh"
#include <cstdlib>
#include <chrono>
namespace fx {
int widget()
{
    auto t = std::chrono::steady_clock::now();
    (void)t;
    return std::rand();
}
}
