#include "widget.hh"
namespace fx {
int widget()
{
    // Invariant checks stay allowed under fatal-boundary.
    CATCHSIM_ASSERT(true, "never fires");
    return 42;
}
}
