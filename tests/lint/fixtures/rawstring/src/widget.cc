#include "widget.hh"
namespace fx {

// Raw string literals must be blanked without desyncing the stripper.
// Every banned token below lives inside string data, not code.
static const char *kDoc = R"(
    std::mt19937 rng;       // looks like a determinism violation
    auto *p = new int[8];   // looks like raw new
    delete[] p;
)";

static const char *kDelim = R"x(quote " and paren )" inside)x";

// An ordinary string right after, and a genuine quote in code: if the
// raw-string scan consumed too much, the stripper would treat the rest
// of this file as string data and miss real code — widget() below
// would vanish and test-coverage would fire.
static const char *kPlain = "rand()";

int widget()
{
    // Not a raw string: FooR is an identifier, so the quote opens an
    // ordinary literal and the ) " sequence inside stays string data.
    struct FooR {
        const char *v;
    };
    FooR f{"(not raw)"};
    (void)kDoc;
    (void)kDelim;
    (void)kPlain;
    (void)f;
    return 42;
}
}
