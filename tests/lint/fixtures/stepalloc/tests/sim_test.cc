#include "sim/fast_forward.hh"
int main() { return 0; }
