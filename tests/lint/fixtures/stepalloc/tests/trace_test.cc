#include "trace/chunk_store.hh"
int main() { return 0; }
