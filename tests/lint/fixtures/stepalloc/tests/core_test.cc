#include "core/ooo_core.hh"
int main() { return 0; }
