#ifndef CHUNK_STORE_HH_
#define CHUNK_STORE_HH_
#include <vector>
namespace fx
{
class ChunkStore
{
  public:
    ChunkStore();
    void bind(int n);
    int find(int key);

  private:
    std::vector<int> entries_;
};
} // namespace fx
#endif
