#include "trace/chunk_store.hh"

namespace fx
{

ChunkStore::ChunkStore()
{
    entries_.resize(64); // constructors may size hot structures
}

void
ChunkStore::bind(int n)
{
    entries_.reserve(n); // setup-time binding may allocate
}

int
ChunkStore::find(int key)
{
    entries_.push_back(key); // store lookup hot path: must be flagged
    return static_cast<int>(entries_.size());
}

} // namespace fx
