#include "sim/fast_forward.hh"

namespace fx
{

FastForward::FastForward()
{
    pending_.resize(64); // constructors may size hot structures
}

void
FastForward::bind(int n)
{
    pending_.reserve(n); // setup-time binding may allocate
}

unsigned long
FastForward::warm(unsigned long n)
{
    pending_.push_back(1); // warming hot loop: must be flagged
    return n;
}

} // namespace fx
