#ifndef FAST_FORWARD_HH_
#define FAST_FORWARD_HH_
#include <vector>
namespace fx
{
class FastForward
{
  public:
    FastForward();
    void bind(int n);
    unsigned long warm(unsigned long n);

  private:
    std::vector<int> pending_;
};
} // namespace fx
#endif
