#include "core/ooo_core.hh"

namespace fx
{

OooCore::OooCore()
{
    rob_.resize(224); // constructors may size hot structures
}

void
OooCore::bind(int n)
{
    rob_.reserve(n); // setup-time functions may allocate too
}

void
OooCore::step()
{
    rob_.push_back(1); // hot loop: must be flagged
}

} // namespace fx
