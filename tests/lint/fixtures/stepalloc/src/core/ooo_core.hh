#ifndef OOO_CORE_HH_
#define OOO_CORE_HH_
#include <vector>
namespace fx
{
class OooCore
{
  public:
    OooCore();
    void bind(int n);
    void step();

  private:
    std::vector<int> rob_;
};
} // namespace fx
#endif
