#include "widget.hh"
namespace fx { int widget() { return 1; } }
