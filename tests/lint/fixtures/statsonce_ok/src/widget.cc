#include "widget.hh"
struct W {
    void open() {}
    void close() {}
    void object(const char *) {}
    void field(const char *, int) {}
};
namespace fx {
int widget()
{
    W w;
    w.open();
    w.object("l1");
    w.field("hits", 1);
    w.close();
    w.object("l2");
    w.field("hits", 2);
    w.close();
    w.close();
    return 0;
}
}
