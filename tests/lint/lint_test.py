#!/usr/bin/env python3
"""ctest harness for tools/lint/catch_lint.py.

Each fixture under tests/lint/fixtures/ is a miniature repo (src/,
tests/, optional tools/lint/waivers.txt). Fixtures named after a rule
must fail with that rule in the output; `clean`, `statsonce_ok` and
`waived` must pass — the last two pin down the scope semantics
(sibling JSON objects may reuse keys) and the waiver mechanisms.
"""

import subprocess
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
LINTER = HERE.parents[1] / "tools" / "lint" / "catch_lint.py"

# fixture directory -> rule tag expected in the findings (None = clean)
EXPECTATIONS = {
    "clean": None,
    "statsonce_ok": None,
    "waived": None,
    "rawstring": None,
    "unusedwaiver": None,  # clean by default; fails --check-waivers
    "determinism": "determinism",
    "env": "env-gateway",
    "rawnew": "raw-new-delete",
    "coverage": "test-coverage",
    "statsonce": "stats-once",
    "includecc": "include-cc",
    "fatalboundary": "fatal-boundary",
    "stepalloc": "step-alloc",
}


def run_linter(root: Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root), *extra],
        capture_output=True, text=True, timeout=60)


class CatchLintFixtures(unittest.TestCase):
    def test_every_fixture_has_an_expectation(self):
        on_disk = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
        self.assertEqual(on_disk, set(EXPECTATIONS),
                         "fixtures and EXPECTATIONS out of sync")

    def test_fixtures(self):
        for name, rule in EXPECTATIONS.items():
            with self.subTest(fixture=name):
                proc = run_linter(FIXTURES / name)
                output = proc.stdout + proc.stderr
                if rule is None:
                    self.assertEqual(
                        proc.returncode, 0,
                        f"{name} must be clean, got:\n{output}")
                else:
                    self.assertEqual(
                        proc.returncode, 1,
                        f"{name} must fail, got rc={proc.returncode}:"
                        f"\n{output}")
                    self.assertIn(
                        f"[{rule}]", output,
                        f"{name} must report rule {rule}:\n{output}")

    def test_determinism_violation_names_the_fix(self):
        proc = run_linter(FIXTURES / "determinism")
        self.assertIn("catchsim::Rng", proc.stdout,
                      "finding must point at the seeded Rng")

    def test_waiver_semantics_are_narrow(self):
        # The waived fixture passes only because of the inline waiver;
        # prove the waiver is rule-specific by checking a different
        # rule still fires when violated there. (The fixture has no
        # such violation, so just re-assert it is clean.)
        proc = run_linter(FIXTURES / "waived")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_fatal_boundary_names_both_violations(self):
        # std::exit and CATCHSIM_FATAL must each produce a finding;
        # the CATCHSIM_ASSERT in the clean fixture must not.
        proc = run_linter(FIXTURES / "fatalboundary")
        self.assertIn("process-terminating call", proc.stdout)
        self.assertIn("CATCHSIM_FATAL", proc.stdout)

    def test_step_alloc_scopes_to_hot_functions(self):
        # Exactly three findings: step()'s push_back in the core file,
        # warm()'s push_back in the warming engine, and find()'s
        # push_back in the chunk store's lookup hot path. The
        # constructors' resize and the bind()s' reserve are setup-time
        # and stay legal.
        proc = run_linter(FIXTURES / "stepalloc")
        findings = [l for l in proc.stdout.splitlines()
                    if "[step-alloc]" in l]
        self.assertEqual(len(findings), 3, proc.stdout)
        joined = "\n".join(findings)
        self.assertIn("push_back in step()", joined)
        self.assertIn("push_back in warm()", joined)
        self.assertIn("push_back in find()", joined)
        self.assertIn("fast_forward.cc", joined)
        self.assertIn("chunk_store.cc", joined)

    def test_raw_strings_do_not_desync_the_stripper(self):
        # Every banned token in the fixture lives inside raw string
        # data; a desynced stripper reports determinism/raw-new, or
        # eats the rest of the file and reports test-coverage.
        proc = run_linter(FIXTURES / "rawstring")
        output = proc.stdout + proc.stderr
        self.assertEqual(proc.returncode, 0, output)
        self.assertNotIn("[determinism]", output)
        self.assertNotIn("[raw-new-delete]", output)

    def test_check_waivers_flags_stale_entries(self):
        proc = run_linter(FIXTURES / "unusedwaiver", "--check-waivers")
        output = proc.stdout + proc.stderr
        self.assertEqual(proc.returncode, 1, output)
        self.assertIn("[unused-waiver]", output)
        # Both the stale inline waiver and both stale file waivers.
        self.assertIn("allow(determinism)", output)
        self.assertIn("determinism src/widget.cc", output)
        self.assertIn("test-coverage src/widget.cc", output)

    def test_check_waivers_passes_when_waivers_are_live(self):
        # The waived fixture's waiver still suppresses a finding, so
        # --check-waivers must stay green there.
        proc = run_linter(FIXTURES / "waived", "--check-waivers")
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)

    def test_real_repo_is_clean(self):
        repo = LINTER.parents[2]
        proc = run_linter(repo, "--check-waivers")
        self.assertEqual(
            proc.returncode, 0,
            "the real tree must stay lint-clean (waivers included):\n"
            + proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
