/**
 * @file
 * Tests for the 32-entry critical-load table: confidence behaviour, LRU
 * pressure (the povray case), and the periodic confidence reset.
 */

#include <gtest/gtest.h>

#include "criticality/area_model.hh"
#include "criticality/critical_table.hh"

namespace catchsim
{
namespace
{

CriticalityConfig
cfg32()
{
    CriticalityConfig cfg;
    cfg.enabled = true;
    return cfg;
}

TEST(CriticalTable, NeedsSaturatedConfidence)
{
    CriticalTable t(cfg32());
    t.record(0x400100);
    EXPECT_FALSE(t.isCritical(0x400100));
    t.record(0x400100);
    EXPECT_FALSE(t.isCritical(0x400100));
    t.record(0x400100);
    EXPECT_TRUE(t.isCritical(0x400100)); // 2-bit counter saturates at 3
    EXPECT_EQ(t.activeCount(), 1u);
}

TEST(CriticalTable, UnknownPcIsNotCritical)
{
    CriticalTable t(cfg32());
    EXPECT_FALSE(t.isCritical(0x400100));
}

TEST(CriticalTable, HoldsThirtyTwoDistinctPcs)
{
    CriticalTable t(cfg32());
    for (int round = 0; round < 3; ++round)
        for (Addr pc = 0; pc < 32; ++pc)
            t.record(0x400000 + pc * 4);
    uint32_t active = 0;
    for (Addr pc = 0; pc < 32; ++pc)
        active += t.isCritical(0x400000 + pc * 4);
    // Hashing may put >8 PCs into a set; most must survive.
    EXPECT_GE(active, 20u);
}

TEST(CriticalTable, ThrashesBeyondCapacity)
{
    // The paper's povray observation: far more critical PCs than
    // entries means evictions and few saturated entries.
    CriticalTable t(cfg32());
    for (int round = 0; round < 4; ++round)
        for (Addr pc = 0; pc < 128; ++pc)
            t.record(0x400000 + pc * 4);
    EXPECT_GT(t.stats().evictions, 100u);
    EXPECT_LT(t.activeCount(), 32u);
}

TEST(CriticalTable, ConfidenceResetClearsUnsaturated)
{
    CriticalityConfig cfg = cfg32();
    cfg.confResetInterval = 100;
    CriticalTable t(cfg);
    t.record(0xa0); // confidence 1, unsaturated
    t.record(0xb0);
    t.record(0xb0);
    t.record(0xb0); // saturated
    t.tick(100);    // reset fires
    EXPECT_TRUE(t.isCritical(0xb0));  // saturated entries survive
    t.record(0xa0);
    t.record(0xa0);
    // 0xa0 was reset to 0; two more recordings give confidence 2 < 3.
    EXPECT_FALSE(t.isCritical(0xa0));
}

TEST(AreaModel, DdgIsAboutThreeKb)
{
    CriticalityConfig cfg;
    auto items = ddgAreaBudget(cfg, 224);
    double bytes = areaTotalBytes(items);
    // Table I: ~2.3 KB of graph rows + ~0.7 KB hashed PCs + the table.
    EXPECT_GT(bytes, 2500);
    EXPECT_LT(bytes, 4096);
    EXPECT_EQ(ddgBitsPerRow(cfg), 5u + 36u + 1u);
}

TEST(AreaModel, TactIsAboutOneKb)
{
    TactConfig cfg;
    auto items = tactAreaBudget(cfg, 32, 16);
    double bytes = areaTotalBytes(items);
    // Fig 9: ~1.2 KB total.
    EXPECT_GT(bytes, 1000);
    EXPECT_LT(bytes, 1500);
}

} // namespace
} // namespace catchsim
