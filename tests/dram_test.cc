/**
 * @file
 * Tests for the DDR4 model: row-buffer behaviour, bank/bus occupancy,
 * write batching and latency ordering properties.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/dram.hh"

namespace catchsim
{
namespace
{

DramConfig
smallConfig()
{
    DramConfig cfg;
    return cfg;
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    Dram dram(smallConfig());
    // First access opens the row (miss), second hits it. (Times chosen
    // away from the staggered refresh blackouts.)
    uint64_t miss = dram.read(0x100000, 1000);
    uint64_t hit = dram.read(0x100000 + 64 * 2, 3000); // same row
    EXPECT_GT(miss, hit);
    EXPECT_EQ(dram.stats().rowHits, 1u);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
}

TEST(Dram, RowMissLatencyBounds)
{
    DramConfig cfg = smallConfig();
    Dram dram(cfg);
    uint64_t lat = dram.read(0x200000, 0);
    // Cold miss: controller + tRCD + tCAS + burst (no precharge needed).
    uint64_t floor = cfg.controllerLat + cfg.tRcd + cfg.tCas +
                     cfg.burstCycles;
    EXPECT_GE(lat, floor);
    EXPECT_LT(lat, floor + cfg.tRp + 10);
}

TEST(Dram, ConflictingBankAccessesSerialise)
{
    DramConfig cfg = smallConfig();
    Dram dram(cfg);
    // Two different rows of the same bank at the same instant.
    Addr a = 0;
    Addr b = cfg.rowBytes * cfg.channels * cfg.ranksPerChannel *
             cfg.banksPerRank; // next row, same bank/channel
    uint64_t l1 = dram.read(a, 0);
    uint64_t l2 = dram.read(b, 0);
    EXPECT_GT(l2, l1);
}

TEST(Dram, IndependentBanksOverlap)
{
    DramConfig cfg = smallConfig();
    Dram dram(cfg);
    uint64_t l1 = dram.read(0, 0);
    // Different channel (line interleaved): fully parallel.
    uint64_t l2 = dram.read(64, 0);
    EXPECT_EQ(l1, l2);
}

TEST(Dram, BusSerialisesSameChannelBursts)
{
    DramConfig cfg = smallConfig();
    Dram dram(cfg);
    // Many same-cycle accesses to one channel but different banks: data
    // bursts must queue on the channel bus.
    uint64_t first = dram.read(0, 0);
    uint64_t last = first;
    for (int i = 1; i < 8; ++i) {
        Addr a = static_cast<Addr>(i) * cfg.rowBytes * cfg.channels;
        last = dram.read(a, 0);
    }
    EXPECT_GE(last, first + 7 * cfg.burstCycles);
}

TEST(Dram, WritesAreCountedAndDrained)
{
    DramConfig cfg = smallConfig();
    Dram dram(cfg);
    for (uint32_t i = 0; i < cfg.writeQueueDepth * 2; ++i)
        dram.write(static_cast<Addr>(i) * 128, 100);
    EXPECT_EQ(dram.stats().writes, cfg.writeQueueDepth * 2);
    EXPECT_GT(dram.stats().writeDrains, 0u);
}

TEST(Dram, WriteDrainDelaysReads)
{
    DramConfig cfg = smallConfig();
    Dram with_writes(cfg);
    Dram without(cfg);
    // Saturate the write queue of one channel, then read from it.
    for (uint32_t i = 0; i < cfg.writeQueueDepth; ++i)
        with_writes.write(static_cast<Addr>(i) * 4096, 50);
    uint64_t loaded = with_writes.read(1 << 20, 100);
    uint64_t clean = without.read(1 << 20, 100);
    EXPECT_GE(loaded, clean);
}

TEST(Dram, LatencyMonotoneUnderLoad)
{
    // Average latency with 64 concurrent requests must exceed the
    // unloaded latency but stay bounded (no runaway queueing).
    DramConfig cfg = smallConfig();
    Dram dram(cfg);
    uint64_t unloaded = dram.read(0x800000, 0);
    Rng rng(5);
    uint64_t total = 0;
    const int n = 64;
    for (int i = 0; i < n; ++i)
        total += dram.read(rng.next() % (64 << 20), 10000);
    double avg = static_cast<double>(total) / n;
    EXPECT_GT(avg, static_cast<double>(unloaded) * 0.5);
    EXPECT_LT(avg, static_cast<double>(unloaded) * 20);
}

TEST(Dram, RefreshBlackoutDelaysAccess)
{
    DramConfig cfg = smallConfig();
    Dram dram(cfg);
    // Warm the row, then access inside vs outside a refresh window of
    // rank 0 (first refresh starts at tRefi/5 with 4 ranks staggered).
    dram.read(0x100000, 100);
    Cycle refresh_start = cfg.tRefi * 1 / 5;
    uint64_t inside = dram.read(0x100000 + 128, refresh_start + 10);
    uint64_t outside =
        dram.read(0x100000 + 256, refresh_start + cfg.tRfc + 2000);
    EXPECT_GT(inside, outside + cfg.tRfc / 2);
    EXPECT_GT(dram.stats().refreshStalls, 0u);
}

TEST(Dram, StatsReset)
{
    Dram dram(smallConfig());
    dram.read(0, 0);
    dram.resetStats();
    EXPECT_EQ(dram.stats().reads, 0u);
    EXPECT_EQ(dram.stats().totalReadLatency, 0u);
}

} // namespace
} // namespace catchsim
