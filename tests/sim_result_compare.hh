/**
 * @file
 * Bitwise SimResult comparison shared by the determinism and parallel
 * runner tests. The stats structs are plain aggregates of uint64_t /
 * double fields with no padding, so memcmp over fully-written values is
 * an exact "every counter identical" check; doubles additionally go
 * through toJson()'s %.17g round-trip for a readable failure message.
 */

#ifndef CATCHSIM_TESTS_SIM_RESULT_COMPARE_HH_
#define CATCHSIM_TESTS_SIM_RESULT_COMPARE_HH_

#include <gtest/gtest.h>

#include <cstring>

#include "sim/simulator.hh"

namespace catchsim
{

template <typename Stats>
::testing::AssertionResult
statsBitwiseEqual(const char *what, const Stats &a, const Stats &b)
{
    static_assert(std::is_trivially_copyable_v<Stats>);
    if (std::memcmp(&a, &b, sizeof(Stats)) == 0)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << what << " counters differ between runs";
}

inline void
expectBitwiseEqual(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(a.hasL2, b.hasL2);
    EXPECT_TRUE(statsBitwiseEqual("core", a.core, b.core));
    EXPECT_TRUE(statsBitwiseEqual("hierarchy", a.hier, b.hier));
    EXPECT_TRUE(statsBitwiseEqual("l1d", a.l1d, b.l1d));
    EXPECT_TRUE(statsBitwiseEqual("l1i", a.l1i, b.l1i));
    if (a.hasL2) {
        EXPECT_TRUE(statsBitwiseEqual("l2", a.l2, b.l2));
    }
    EXPECT_TRUE(statsBitwiseEqual("llc", a.llc, b.llc));
    EXPECT_TRUE(statsBitwiseEqual("dram", a.dram, b.dram));
    EXPECT_TRUE(statsBitwiseEqual("frontend", a.frontend, b.frontend));
    EXPECT_TRUE(statsBitwiseEqual("ddg", a.ddg, b.ddg));
    EXPECT_TRUE(statsBitwiseEqual("critical_table", a.criticalTable,
                                  b.criticalTable));
    EXPECT_EQ(a.activeCriticalPcs, b.activeCriticalPcs);
    EXPECT_TRUE(statsBitwiseEqual("tact", a.tact, b.tact));
    EXPECT_TRUE(statsBitwiseEqual("energy", a.energy, b.energy));
    EXPECT_EQ(a.sampled, b.sampled);
    if (a.sampled) {
        EXPECT_TRUE(statsBitwiseEqual("sample", a.sample, b.sample));
    }

    // Bitwise-equal doubles, reported readably.
    EXPECT_EQ(a.toJson(), b.toJson()) << a.workload;
}

} // namespace catchsim

#endif // CATCHSIM_TESTS_SIM_RESULT_COMPARE_HH_
