/**
 * @file
 * Tests for the results JSON layer (sim/results_json.cc): the full
 * SimResult toJson/fromJson bitwise round trip the journal resume rests
 * on, the outcome-aware suite export (per-run status + campaign
 * summary), and the export error paths — an unwritable destination must
 * come back as a SimError, and the atomic tmp-then-rename write must
 * never leave a torn document at the final path.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/fault_inject.hh"
#include "common/json.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/simulator.hh"
#include "sim_result_compare.hh"
#include "trace/chunk_store.hh"

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 20000;
constexpr uint64_t kWarm = 5000;

const FaultPlan kNoFaults;

IsolationOptions
optsWith(const FaultPlan &plan)
{
    IsolationOptions opts;
    opts.plan = &plan;
    opts.backoffMs = 0;
    return opts;
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f)
        return {};
    std::string text(1 << 20, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    return text;
}

TEST(ResultsJson, SimResultRoundTripsBitwise)
{
    SimConfig cfg = withCatch(baselineSkx());
    auto out = runWorkloadsIsolated(cfg, {"mcf"}, kInstr, kWarm, 1,
                                    optsWith(kNoFaults));
    ASSERT_TRUE(out[0].ok());
    const SimResult &orig = out[0].result;

    std::string json = orig.toJson();
    auto back = SimResult::fromJson(json);
    ASSERT_TRUE(back.ok()) << (back.ok() ? "" : back.error().message);
    expectBitwiseEqual(orig, back.value());
    // And the re-serialisation is byte-identical, so a journal record
    // survives any number of resume cycles unchanged.
    EXPECT_EQ(back.value().toJson(), json);
}

TEST(ResultsJson, FromJsonRejectsDamagedDocuments)
{
    for (const char *bad :
         {"", "{", "{}", "[]", "42", "{\"workload\":\"mcf\"}"}) {
        auto r = SimResult::fromJson(std::string(bad));
        EXPECT_FALSE(r.ok()) << "must reject: " << bad;
    }
}

TEST(ResultsJson, OutcomeExportCarriesStatusAndSummary)
{
    SimConfig cfg = baselineSkx();
    ExperimentEnv env;
    env.names = {"mcf", "hmmer"};
    env.instrs = kInstr;
    env.warmup = kWarm;
    FaultPlan plan = [] {
        auto p = FaultPlan::parse("trace-corrupt:mcf");
        EXPECT_TRUE(p.ok());
        return std::move(p).value();
    }();
    auto outcomes = runWorkloadsIsolated(cfg, env.names, kInstr, kWarm,
                                         2, optsWith(plan));
    ASSERT_FALSE(outcomes[0].ok());
    ASSERT_TRUE(outcomes[1].ok());

    std::string path = ::testing::TempDir() + "outcome_export.json";
    ASSERT_TRUE(writeSuiteJson(path, cfg, env, outcomes).ok());
    std::string text = readFile(path);

    // The document must parse with our own reader (a stronger
    // well-formedness check than brace counting)...
    auto doc = parseJson(text);
    ASSERT_TRUE(doc.ok()) << (doc.ok() ? "" : doc.error().message);
    // ...and carry the campaign summary plus per-run status records.
    const JsonValue *summary = doc.value().member("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->member("total")->asU64(), 2u);
    EXPECT_EQ(summary->member("ok")->asU64(), 1u);
    EXPECT_EQ(summary->member("failed")->asU64(), 1u);
    EXPECT_EQ(summary->member("timed_out")->asU64(), 0u);

    const JsonValue *results = doc.value().member("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->size(), 2u);
    const JsonValue *failed = results->at(0);
    EXPECT_EQ(failed->member("workload")->asString(), "mcf");
    EXPECT_EQ(failed->member("status")->asString(), "failed");
    const JsonValue *err = failed->member("error");
    ASSERT_NE(err, nullptr) << "failures embed the structured error";
    EXPECT_EQ(err->member("category")->asString(), "trace-corrupt");
    EXPECT_EQ(failed->member("result"), nullptr)
        << "no fabricated result for a failed run";
    const JsonValue *okrun = results->at(1);
    EXPECT_EQ(okrun->member("status")->asString(), "ok");
    ASSERT_NE(okrun->member("result"), nullptr);

    std::filesystem::remove(path);
}

TEST(ResultsJson, ProfiledOutcomeExportsHostPerf)
{
    SimConfig cfg = baselineSkx();
    ExperimentEnv env;
    env.names = {"mcf"};
    env.instrs = kInstr;
    env.warmup = kWarm;
    IsolationOptions opts = optsWith(kNoFaults);
    opts.profile = true;
    auto outcomes = runWorkloadsIsolated(cfg, env.names, kInstr, kWarm,
                                         1, opts);
    ASSERT_TRUE(outcomes[0].ok());
    ASSERT_TRUE(outcomes[0].profile.has_value());
    // Every phase actually ran, so its timing is positive, and the
    // process footprint is nonzero.
    EXPECT_GT(outcomes[0].profile->warmupSec, 0.0);
    EXPECT_GT(outcomes[0].profile->measuredSec, 0.0);
    EXPECT_GT(outcomes[0].profile->traceGenSec, 0.0);
    EXPECT_GT(outcomes[0].profile->peakRssBytes, 0u);

    std::string path = ::testing::TempDir() + "profiled_export.json";
    ASSERT_TRUE(writeSuiteJson(path, cfg, env, outcomes).ok());
    auto doc = parseJson(readFile(path));
    ASSERT_TRUE(doc.ok()) << (doc.ok() ? "" : doc.error().message);
    const JsonValue *run = doc.value().member("results")->at(0);
    const JsonValue *perf = run->member("hostPerf");
    ASSERT_NE(perf, nullptr);
    EXPECT_NE(perf->member("trace_gen_sec"), nullptr);
    EXPECT_NE(perf->member("warmup_sec"), nullptr);
    EXPECT_NE(perf->member("measured_sec"), nullptr);
    EXPECT_GT(perf->member("peak_rss_bytes")->asU64(), 0u);
    // The simulated result itself is unchanged by profiling.
    auto plain = runWorkloadsIsolated(cfg, env.names, kInstr, kWarm, 1,
                                      optsWith(kNoFaults));
    ASSERT_TRUE(plain[0].ok());
    expectBitwiseEqual(outcomes[0].result, plain[0].result);
    EXPECT_FALSE(plain[0].profile.has_value());

    std::filesystem::remove(path);
}

TEST(ResultsJson, HostPerfReportsPerRunStoreCounters)
{
    // The store counters are per-run (this run's refill hits/misses),
    // never campaign-cumulative: a cold campaign then a warm campaign
    // against the same store must report miss-only then hit-only.
    SimConfig cfg = baselineSkx();
    ExperimentEnv env;
    env.names = {"mcf"};
    env.instrs = kInstr;
    env.warmup = kWarm;
    ChunkStore store;
    IsolationOptions opts = optsWith(kNoFaults);
    opts.profile = true;
    opts.store = &store;

    auto cold = runWorkloadsIsolated(cfg, env.names, kInstr, kWarm, 1,
                                     opts);
    ASSERT_TRUE(cold[0].ok());
    ASSERT_TRUE(cold[0].profile.has_value());
    EXPECT_GT(cold[0].profile->storeMissChunks, 0u);
    EXPECT_EQ(cold[0].profile->storeHitChunks, 0u);

    auto warm = runWorkloadsIsolated(cfg, env.names, kInstr, kWarm, 1,
                                     opts);
    ASSERT_TRUE(warm[0].ok());
    ASSERT_TRUE(warm[0].profile.has_value());
    EXPECT_GT(warm[0].profile->storeHitChunks, 0u);
    EXPECT_EQ(warm[0].profile->storeMissChunks, 0u)
        << "a cumulative counter would still show the cold misses";
    expectBitwiseEqual(warm[0].result, cold[0].result);

    std::string path = ::testing::TempDir() + "store_counters.json";
    ASSERT_TRUE(writeSuiteJson(path, cfg, env, warm).ok());
    auto doc = parseJson(readFile(path));
    ASSERT_TRUE(doc.ok()) << (doc.ok() ? "" : doc.error().message);
    const JsonValue *perf =
        doc.value().member("results")->at(0)->member("hostPerf");
    ASSERT_NE(perf, nullptr);
    ASSERT_NE(perf->member("store_hit_chunks"), nullptr);
    ASSERT_NE(perf->member("store_miss_chunks"), nullptr);
    EXPECT_EQ(perf->member("store_hit_chunks")->asU64(),
              warm[0].profile->storeHitChunks);
    EXPECT_EQ(perf->member("store_miss_chunks")->asU64(), 0u);
    std::filesystem::remove(path);
}

TEST(ResultsJson, HostPerfReportsPerRunWarmStateCounters)
{
    // Same per-run contract for the warmed-state snapshot counters: a
    // cold sampled run misses and publishes, a repeat run restores,
    // and the export carries exactly this run's attribution.
    SimConfig cfg = withCatch(baselineSkx());
    cfg.sampling.mode = SampleMode::Sampled;
    ExperimentEnv env;
    env.names = {"mcf"};
    env.instrs = kInstr;
    env.warmup = kWarm;
    ChunkStore chunks;
    // Lift the window-profitability gates: this schedule's slack sits
    // below the default floor, and the counters under test only move
    // when window boundaries actually memoize.
    WarmStateStore::Config ws_cfg;
    ws_cfg.minWindowGapInstrs = 0;
    ws_cfg.maxWindowPages = 0;
    WarmStateStore warm_store(ws_cfg);
    IsolationOptions opts = optsWith(kNoFaults);
    opts.profile = true;
    opts.store = &chunks;
    opts.warmStore = &warm_store;

    auto cold = runWorkloadsIsolated(cfg, env.names, kInstr, kWarm, 1,
                                     opts);
    ASSERT_TRUE(cold[0].ok());
    ASSERT_TRUE(cold[0].profile.has_value());
    EXPECT_EQ(cold[0].profile->warmStateMisses, 1u);
    EXPECT_EQ(cold[0].profile->warmStateHits, 0u);
    EXPECT_GT(cold[0].profile->warmStateBytes, 0u);

    auto warm = runWorkloadsIsolated(cfg, env.names, kInstr, kWarm, 1,
                                     opts);
    ASSERT_TRUE(warm[0].ok());
    ASSERT_TRUE(warm[0].profile.has_value());
    EXPECT_EQ(warm[0].profile->warmStateHits, 1u);
    EXPECT_EQ(warm[0].profile->warmStateMisses, 0u)
        << "a cumulative counter would still show the cold miss";
    expectBitwiseEqual(warm[0].result, cold[0].result);

    std::string path = ::testing::TempDir() + "warm_state_counters.json";
    ASSERT_TRUE(writeSuiteJson(path, cfg, env, warm).ok());
    auto doc = parseJson(readFile(path));
    ASSERT_TRUE(doc.ok()) << (doc.ok() ? "" : doc.error().message);
    const JsonValue *perf =
        doc.value().member("results")->at(0)->member("hostPerf");
    ASSERT_NE(perf, nullptr);
    ASSERT_NE(perf->member("warm_state_hits"), nullptr);
    ASSERT_NE(perf->member("warm_state_misses"), nullptr);
    ASSERT_NE(perf->member("warm_state_bytes"), nullptr);
    EXPECT_EQ(perf->member("warm_state_hits")->asU64(), 1u);
    EXPECT_EQ(perf->member("warm_state_misses")->asU64(), 0u);
    EXPECT_EQ(perf->member("warm_state_bytes")->asU64(),
              warm[0].profile->warmStateBytes);
    // The window-boundary attribution rides beside the global one: the
    // warm run restored every gap the cold run published.
    ASSERT_NE(perf->member("warm_state_window_hits"), nullptr);
    ASSERT_NE(perf->member("warm_state_window_misses"), nullptr);
    ASSERT_NE(perf->member("warm_state_window_bytes"), nullptr);
    EXPECT_GT(warm[0].profile->warmStateWindowHits, 0u);
    EXPECT_EQ(perf->member("warm_state_window_hits")->asU64(),
              warm[0].profile->warmStateWindowHits);
    EXPECT_EQ(perf->member("warm_state_window_misses")->asU64(), 0u);
    EXPECT_EQ(perf->member("warm_state_window_bytes")->asU64(),
              warm[0].profile->warmStateWindowBytes);
    std::filesystem::remove(path);
}

TEST(ResultsJson, UnwritableDestinationIsAnError)
{
    ExperimentEnv env;
    env.names = {"mcf"};
    env.instrs = kInstr;
    env.warmup = kWarm;
    std::vector<SimResult> results(1);
    auto r = writeSuiteJson("/nonexistent-root/nested/out.json",
                            baselineSkx(), env, results);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().category, ErrorCategory::Config);
}

TEST(ResultsJson, FailedExportLeavesNoTornFinalDocument)
{
    // The atomic write contract: the final path either holds the old
    // complete document or the new complete document, never a torn one.
    std::string dir = ::testing::TempDir() + "catchsim_atomic_export";
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(std::filesystem::create_directories(dir));
    std::string path = dir + "/suite.json";

    ExperimentEnv env;
    env.names = {"mcf"};
    env.instrs = kInstr;
    env.warmup = kWarm;
    std::vector<SimResult> results(1);
    ASSERT_TRUE(writeSuiteJson(path, baselineSkx(), env, results).ok());
    std::string original = readFile(path);
    ASSERT_FALSE(original.empty());

    // Force the next write to fail after the first succeeded: the tmp
    // file cannot be created in a directory that no longer permits it.
    std::filesystem::permissions(dir,
                                 std::filesystem::perms::owner_read |
                                     std::filesystem::perms::owner_exec);
    auto r = writeSuiteJson(path, baselineSkx(), env, results);
    std::filesystem::permissions(dir, std::filesystem::perms::owner_all);
    if (r.ok())
        GTEST_SKIP() << "running as a user the permission bits cannot "
                        "stop (root); atomicity not observable here";
    EXPECT_EQ(readFile(path), original)
        << "a failed export must not disturb the existing document";
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace catchsim
