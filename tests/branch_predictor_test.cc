/**
 * @file
 * Tests for the tournament branch predictor and BTB.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/branch_predictor.hh"

namespace catchsim
{
namespace
{

MicroOp
branchOp(Addr pc, bool taken, Addr target)
{
    MicroOp op;
    op.pc = pc;
    op.cls = OpClass::Branch;
    op.taken = taken;
    op.target = target;
    return op;
}

TEST(BranchPredictor, AlwaysTakenLoopLearns)
{
    BranchPredictor bp;
    int mis = 0;
    for (int i = 0; i < 1000; ++i)
        mis += bp.predictAndTrain(branchOp(0x400100, true, 0x400000));
    EXPECT_LT(mis, 10);
}

TEST(BranchPredictor, BiasedRandomHandledByBimodal)
{
    // 90%-taken random outcomes defeat pure gshare (every history is
    // unique); the bimodal side must cap the mispredict rate near 10%.
    BranchPredictor bp;
    Rng rng(6);
    int mis = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        mis += bp.predictAndTrain(
            branchOp(0x400100, rng.percent(90), 0x400000));
    EXPECT_LT(static_cast<double>(mis) / n, 0.18);
}

TEST(BranchPredictor, AlternatingPatternHandledByGshare)
{
    BranchPredictor bp;
    int mis = 0;
    for (int i = 0; i < 4000; ++i)
        mis += bp.predictAndTrain(branchOp(0x400100, i % 2 == 0,
                                           0x400000));
    // The last thousand iterations must be near-perfect.
    int late_mis = 0;
    for (int i = 0; i < 1000; ++i)
        late_mis += bp.predictAndTrain(branchOp(0x400100, i % 2 == 0,
                                                0x400000));
    EXPECT_LT(late_mis, 50);
    (void)mis;
}

TEST(BranchPredictor, UnstableIndirectTargetMispredicts)
{
    BranchPredictor bp;
    // Direction always taken (learnable) but the target alternates:
    // the BTB must miss about half the time.
    int mis = 0;
    for (int i = 0; i < 1000; ++i)
        mis += bp.predictAndTrain(
            branchOp(0x400100, true,
                     i % 2 ? 0x500000 : 0x600000));
    EXPECT_GT(mis, 800);
    EXPECT_GT(bp.stats().targetWrong, 800u);
}

TEST(BranchPredictor, PageAlignedBranchesDoNotAliasBtb)
{
    // Branch PCs 4 KB apart (page-aligned code blocks) must still get
    // distinct BTB slots via the hashed index.
    BranchPredictor bp;
    int mis_late = 0;
    for (int round = 0; round < 20; ++round) {
        for (Addr b = 0; b < 64; ++b) {
            bool m = bp.predictAndTrain(branchOp(
                0x400000 + b * 4096, true, 0x400000 + b * 4096 + 0x80));
            if (round >= 10)
                mis_late += m;
        }
    }
    EXPECT_LT(mis_late, 64); // < 10% in the trained half
}

TEST(BranchPredictor, WouldMispredictIsPure)
{
    BranchPredictor bp;
    MicroOp op = branchOp(0x400104, true, 0x400000);
    bool a = bp.wouldMispredict(op);
    bool b = bp.wouldMispredict(op);
    EXPECT_EQ(a, b);
    EXPECT_EQ(bp.stats().branches, 0u);
}

TEST(BranchPredictor, StatsCount)
{
    BranchPredictor bp;
    for (int i = 0; i < 10; ++i)
        bp.predictAndTrain(branchOp(0x400100, true, 0x400000));
    EXPECT_EQ(bp.stats().branches, 10u);
    bp.resetStats();
    EXPECT_EQ(bp.stats().branches, 0u);
}

} // namespace
} // namespace catchsim
