/**
 * @file
 * Round-trip tests for the binary trace serialisation, plus the
 * validation layer of loadTraceChecked(): every field a bit flip can
 * damage — magic, version, counts, op classes, register indices, page
 * alignment — must come back as a typed trace-corrupt SimError, never
 * a crash, an over-allocation or a silently wrong trace.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "trace/suite.hh"
#include "trace/trace_io.hh"

namespace catchsim
{
namespace
{

// On-disk layout constants mirrored from trace_io.cc (6-byte magic +
// u32 version + u64 op count header; 30-byte version-2 op records).
constexpr long kHeaderBytes = 6 + 4 + 8;
constexpr long kOpBytes = 3 * 8 + 6;
constexpr long kVersionOffset = 6;
constexpr long kCountOffset = 10;
constexpr long kOp0ClassOffset = kHeaderBytes + 24;
constexpr long kOp0DstOffset = kHeaderBytes + 25;

/** Writes a fresh serialised trace and returns its op count. */
uint64_t
writeTestTrace(const std::string &path, const char *workload = "mcf")
{
    auto wl = makeWorkload(workload);
    Trace t = wl->generate(2000);
    EXPECT_TRUE(saveTrace(t, path));
    return t.ops.size();
}

void
patchByte(const std::string &path, long offset, unsigned char value)
{
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    ASSERT_EQ(std::fputc(value, f), value);
    ASSERT_EQ(std::fclose(f), 0);
}

/** Expects a trace-corrupt error whose message mentions @p what. */
void
expectCorrupt(const std::string &path, const char *what)
{
    auto r = loadTraceChecked(path);
    ASSERT_FALSE(r.ok()) << "must reject " << what;
    EXPECT_EQ(r.error().category, ErrorCategory::TraceCorrupt) << what;
    EXPECT_NE(r.error().message.find(what), std::string::npos)
        << "got: " << r.error().message;
}

TEST(TraceIo, RoundTripPreservesOpsAndMemory)
{
    auto wl = makeWorkload("mcf");
    Trace orig = wl->generate(5000);
    const std::string path = "/tmp/catchsim_roundtrip.trace";
    ASSERT_TRUE(saveTrace(orig, path));
    Trace back = loadTrace(path);
    ASSERT_EQ(back.ops.size(), orig.ops.size());
    for (size_t i = 0; i < orig.ops.size(); ++i) {
        EXPECT_EQ(back.ops[i].pc, orig.ops[i].pc);
        EXPECT_EQ(back.ops[i].cls, orig.ops[i].cls);
        EXPECT_EQ(back.ops[i].memAddr, orig.ops[i].memAddr);
        EXPECT_EQ(back.ops[i].value, orig.ops[i].value);
        EXPECT_EQ(back.ops[i].taken, orig.ops[i].taken);
        EXPECT_EQ(back.ops[i].dst, orig.ops[i].dst);
    }
    // Every referenced memory word survives (the feeder's view).
    for (const auto &op : orig.ops) {
        if (op.isLoad()) {
            EXPECT_EQ(back.mem->read(op.memAddr),
                      orig.mem->read(op.memAddr));
        }
    }
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileYieldsEmptyTrace)
{
    Trace t = loadTrace("/tmp/definitely/not/here.trace");
    EXPECT_TRUE(t.ops.empty());
}

TEST(TraceIo, CorruptHeaderRejected)
{
    const std::string path = "/tmp/catchsim_bad.trace";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("NOTATRACE", f);
    std::fclose(f);
    Trace t = loadTrace(path);
    EXPECT_TRUE(t.ops.empty());
    std::remove(path.c_str());
}

TEST(TraceIoChecked, MissingFileIsAConfigError)
{
    auto r = loadTraceChecked("/tmp/definitely/not/here.trace");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().category, ErrorCategory::Config);
}

TEST(TraceIoChecked, ZeroLengthFileRejected)
{
    const std::string path = "/tmp/catchsim_empty.trace";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    expectCorrupt(path, "smaller than the");
    std::remove(path.c_str());
}

TEST(TraceIoChecked, WrongVersionRejected)
{
    const std::string path = "/tmp/catchsim_version.trace";
    writeTestTrace(path);
    patchByte(path, kVersionOffset, 9);
    expectCorrupt(path, "unsupported version");
    std::remove(path.c_str());
}

TEST(TraceIoChecked, BitFlippedOpClassRejected)
{
    const std::string path = "/tmp/catchsim_class.trace";
    writeTestTrace(path);
    patchByte(path, kOp0ClassOffset, 0xff);
    expectCorrupt(path, "invalid class");
    std::remove(path.c_str());
}

TEST(TraceIoChecked, BitFlippedRegisterIndexRejected)
{
    const std::string path = "/tmp/catchsim_reg.trace";
    writeTestTrace(path);
    patchByte(path, kOp0DstOffset, 100); // > 63 architectural registers
    expectCorrupt(path, "out-of-range register");
    std::remove(path.c_str());
}

TEST(TraceIoChecked, HugeOpCountIsBoundedByFileSize)
{
    // A flipped high byte of the count must be caught by the file-size
    // bound before anything is allocated or read.
    const std::string path = "/tmp/catchsim_count.trace";
    writeTestTrace(path);
    patchByte(path, kCountOffset + 7, 0xff);
    expectCorrupt(path, "op count");
    std::remove(path.c_str());
}

TEST(TraceIoChecked, UnalignedPageBaseRejected)
{
    const std::string path = "/tmp/catchsim_page.trace";
    uint64_t ops = writeTestTrace(path); // mcf: guaranteed loads/stores
    // First page record sits right after the op array's u64 page count;
    // its base is 4K-aligned, so forcing the low byte on unaligns it.
    patchByte(path, kHeaderBytes + long(ops) * kOpBytes + 8, 0x01);
    expectCorrupt(path, "not page-aligned");
    std::remove(path.c_str());
}

TEST(TraceIoChecked, TrailingBytesRejected)
{
    const std::string path = "/tmp/catchsim_trailing.trace";
    writeTestTrace(path);
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputc(0x5a, f);
    std::fclose(f);
    expectCorrupt(path, "trailing byte");
    std::remove(path.c_str());
}

TEST(TraceIoChecked, TruncationMidOpsNamesTheOp)
{
    const std::string path = "/tmp/catchsim_midtrunc.trace";
    writeTestTrace(path);
    ASSERT_EQ(truncate(path.c_str(), kHeaderBytes + kOpBytes + 10), 0);
    // The size bound trips first: the header's op count can no longer
    // fit in what remains of the file.
    expectCorrupt(path, "op count");
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileRejected)
{
    auto wl = makeWorkload("hmmer");
    Trace orig = wl->generate(2000);
    const std::string path = "/tmp/catchsim_trunc.trace";
    ASSERT_TRUE(saveTrace(orig, path));
    // Truncate to half.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    Trace t = loadTrace(path);
    EXPECT_TRUE(t.ops.empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace catchsim
