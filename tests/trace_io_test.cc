/**
 * @file
 * Round-trip tests for the binary trace serialisation.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include <unistd.h>

#include "trace/suite.hh"
#include "trace/trace_io.hh"

namespace catchsim
{
namespace
{

TEST(TraceIo, RoundTripPreservesOpsAndMemory)
{
    auto wl = makeWorkload("mcf");
    Trace orig = wl->generate(5000);
    const std::string path = "/tmp/catchsim_roundtrip.trace";
    ASSERT_TRUE(saveTrace(orig, path));
    Trace back = loadTrace(path);
    ASSERT_EQ(back.ops.size(), orig.ops.size());
    for (size_t i = 0; i < orig.ops.size(); ++i) {
        EXPECT_EQ(back.ops[i].pc, orig.ops[i].pc);
        EXPECT_EQ(back.ops[i].cls, orig.ops[i].cls);
        EXPECT_EQ(back.ops[i].memAddr, orig.ops[i].memAddr);
        EXPECT_EQ(back.ops[i].value, orig.ops[i].value);
        EXPECT_EQ(back.ops[i].taken, orig.ops[i].taken);
        EXPECT_EQ(back.ops[i].dst, orig.ops[i].dst);
    }
    // Every referenced memory word survives (the feeder's view).
    for (const auto &op : orig.ops) {
        if (op.isLoad()) {
            EXPECT_EQ(back.mem->read(op.memAddr),
                      orig.mem->read(op.memAddr));
        }
    }
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileYieldsEmptyTrace)
{
    Trace t = loadTrace("/tmp/definitely/not/here.trace");
    EXPECT_TRUE(t.ops.empty());
}

TEST(TraceIo, CorruptHeaderRejected)
{
    const std::string path = "/tmp/catchsim_bad.trace";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("NOTATRACE", f);
    std::fclose(f);
    Trace t = loadTrace(path);
    EXPECT_TRUE(t.ops.empty());
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileRejected)
{
    auto wl = makeWorkload("hmmer");
    Trace orig = wl->generate(2000);
    const std::string path = "/tmp/catchsim_trunc.trace";
    ASSERT_TRUE(saveTrace(orig, path));
    // Truncate to half.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    Trace t = loadTrace(path);
    EXPECT_TRUE(t.ops.empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace catchsim
