/**
 * @file
 * Tests for the incremental content-hashed result store
 * (sim/result_store.hh): successful runs round-trip bitwise through
 * put/find, the executor serves unchanged cells from the store and
 * counts hits/misses, a one-knob config change invalidates exactly the
 * cells it touches, corrupt records self-heal as misses, and a second
 * campaign pointed at a locked store fails fast with a config error.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "sim/configs.hh"
#include "sim/parallel_runner.hh"
#include "sim/result_store.hh"
#include "sim/worker_proto.hh"
#include "sim_result_compare.hh"
#include "trace/suite.hh"

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 20000;
constexpr uint64_t kWarm = 5000;

/** Fresh scratch directory per test; removed on destruction. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &name)
        : path(::testing::TempDir() + "catchsim_" + name)
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

std::unique_ptr<ResultStore>
mustOpen(const std::string &dir)
{
    auto s = ResultStore::open(dir);
    EXPECT_TRUE(s.ok()) << (s.ok() ? "" : s.error().message);
    return s.ok() ? std::move(s).value() : nullptr;
}

RunKey
keyFor(const SimConfig &cfg, const std::string &workload)
{
    auto wl = findWorkload(workload);
    EXPECT_TRUE(wl.ok()) << workload;
    return RunKey{workload, wl.ok() ? wl.value()->seed() : 0,
                  configDigest(cfg), kInstr, kWarm};
}

IsolationOptions
optsWith(ResultStore *store)
{
    IsolationOptions opts;
    opts.resultStore = store;
    opts.backoffMs = 0;
    return opts;
}

TEST(ResultStore, PutThenFindRoundTripsBitwise)
{
    ScratchDir dir("store_roundtrip");
    SimConfig cfg = baselineSkx();
    auto store = mustOpen(dir.path);
    ASSERT_NE(store, nullptr);

    auto ran = runWorkloadsIsolated(cfg, {"hmmer"}, kInstr, kWarm, 1);
    ASSERT_TRUE(ran[0].ok());

    RunKey key = keyFor(cfg, "hmmer");
    EXPECT_FALSE(store->find(key).has_value());
    EXPECT_EQ(store->misses(), 1u);

    store->put(key, ran[0]);
    auto hit = store->find(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(hit->fromStore);
    EXPECT_EQ(hit->status, RunStatus::Ok);
    EXPECT_EQ(hit->attempts, 1u);
    expectBitwiseEqual(ran[0].result, hit->result);
    EXPECT_EQ(store->hits(), 1u);
}

TEST(ResultStore, ExecutorResweepHitsUnchangedCellsOnly)
{
    ScratchDir dir("store_resweep");
    SimConfig cfg = baselineSkx();
    const std::vector<std::string> names = {"mcf", "hmmer"};

    // Campaign 1: cold store, every cell executes and persists.
    auto s1 = mustOpen(dir.path);
    ASSERT_NE(s1, nullptr);
    auto first = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 2,
                                      optsWith(s1.get()));
    for (const auto &o : first) {
        ASSERT_TRUE(o.ok()) << o.workload;
        EXPECT_FALSE(o.fromStore);
        EXPECT_TRUE(o.storeMiss);
    }
    EXPECT_EQ(s1->misses(), names.size());
    CampaignSummary sum1 = summarizeOutcomes(first);
    EXPECT_EQ(sum1.storeMisses, names.size());
    EXPECT_EQ(sum1.storeHits, 0u);
    s1.reset(); // release the campaign lock

    // Campaign 2: identical config — every cell replays bitwise.
    auto s2 = mustOpen(dir.path);
    ASSERT_NE(s2, nullptr);
    auto second = runWorkloadsIsolated(cfg, names, kInstr, kWarm, 2,
                                       optsWith(s2.get()));
    for (size_t i = 0; i < names.size(); ++i) {
        ASSERT_TRUE(second[i].ok());
        EXPECT_TRUE(second[i].fromStore) << names[i];
        EXPECT_EQ(second[i].config, cfg.name);
        expectBitwiseEqual(first[i].result, second[i].result);
    }
    EXPECT_EQ(s2->hits(), names.size());
    CampaignSummary sum2 = summarizeOutcomes(second);
    EXPECT_EQ(sum2.storeHits, names.size());
    EXPECT_EQ(sum2.storeMisses, 0u);
    s2.reset();

    // Campaign 3: one knob changed — every cell is invalidated and
    // re-executes (the digest covers the whole SimConfig).
    SimConfig tweaked = cfg;
    tweaked.oracle.latAddLlc = 1;
    auto s3 = mustOpen(dir.path);
    ASSERT_NE(s3, nullptr);
    auto third = runWorkloadsIsolated(tweaked, names, kInstr, kWarm, 2,
                                      optsWith(s3.get()));
    for (const auto &o : third) {
        ASSERT_TRUE(o.ok());
        EXPECT_FALSE(o.fromStore) << o.workload
                                  << " must re-execute after the sweep";
    }
    EXPECT_EQ(s3->misses(), names.size());
}

TEST(ResultStore, RenamedConfigKeepsItsCells)
{
    // The digest hashes content, not the label: a renamed but otherwise
    // identical config replays from the store.
    SimConfig cfg = baselineSkx();
    SimConfig renamed = cfg;
    renamed.name = "relabelled";
    EXPECT_EQ(configDigest(cfg), configDigest(renamed));

    SimConfig tweaked = cfg;
    tweaked.llc.latency += 1;
    EXPECT_NE(configDigest(cfg), configDigest(tweaked));
}

TEST(ResultStore, KeyCoversTheWholeRunIdentity)
{
    SimConfig cfg = baselineSkx();
    RunKey key = keyFor(cfg, "hmmer");
    uint64_t base = key.hash();

    RunKey k = key;
    k.workload = "mcf";
    EXPECT_NE(k.hash(), base);
    k = key;
    k.workloadSeed ^= 1;
    EXPECT_NE(k.hash(), base);
    k = key;
    k.configDigest ^= 1;
    EXPECT_NE(k.hash(), base);
    k = key;
    k.instrs += 1;
    EXPECT_NE(k.hash(), base);
    k = key;
    k.warmup += 1;
    EXPECT_NE(k.hash(), base);
}

TEST(ResultStore, CorruptRecordsAreDeletedAndMiss)
{
    ScratchDir dir("store_corrupt");
    SimConfig cfg = baselineSkx();
    auto store = mustOpen(dir.path);
    ASSERT_NE(store, nullptr);

    auto ran = runWorkloadsIsolated(cfg, {"hmmer"}, kInstr, kWarm, 1);
    ASSERT_TRUE(ran[0].ok());
    RunKey key = keyFor(cfg, "hmmer");
    store->put(key, ran[0]);
    ASSERT_TRUE(store->find(key).has_value());

    const std::string path =
        dir.path + "/" + [&] {
            char buf[20];
            std::snprintf(buf, sizeof(buf), "%016llx",
                          static_cast<unsigned long long>(key.hash()));
            return std::string(buf);
        }() + ".json";
    ASSERT_TRUE(std::filesystem::exists(path));

    // Flip the record body so the checksum line no longer matches.
    {
        std::fstream f(path, std::ios::in | std::ios::out);
        ASSERT_TRUE(f.is_open());
        f.seekp(1);
        f.put('!');
    }
    EXPECT_FALSE(store->find(key).has_value());
    EXPECT_FALSE(std::filesystem::exists(path))
        << "corrupt record must self-heal by deletion";
    // And the miss is permanent until a fresh put.
    EXPECT_FALSE(store->find(key).has_value());
    store->put(key, ran[0]);
    EXPECT_TRUE(store->find(key).has_value());
}

TEST(ResultStore, TruncatedRecordIsAMiss)
{
    ScratchDir dir("store_truncated");
    SimConfig cfg = baselineSkx();
    auto store = mustOpen(dir.path);
    ASSERT_NE(store, nullptr);

    auto ran = runWorkloadsIsolated(cfg, {"hmmer"}, kInstr, kWarm, 1);
    ASSERT_TRUE(ran[0].ok());
    RunKey key = keyFor(cfg, "hmmer");
    store->put(key, ran[0]);

    // Rewrite the file as a single line (no checksum): a torn write
    // that the tmp+rename discipline should normally prevent.
    std::string path;
    for (const auto &e : std::filesystem::directory_iterator(dir.path))
        if (e.path().extension() == ".json")
            path = e.path().string();
    ASSERT_FALSE(path.empty());
    {
        std::ofstream f(path, std::ios::trunc);
        f << "{\"workload\":\"hmmer\"}";
    }
    EXPECT_FALSE(store->find(key).has_value());
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ResultStore, SecondCampaignOnALockedStoreFailsFast)
{
    ScratchDir dir("store_lock");
    auto first = mustOpen(dir.path);
    ASSERT_NE(first, nullptr);

    auto second = ResultStore::open(dir.path);
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().category, ErrorCategory::Config);
    EXPECT_NE(second.error().message.find("locked"), std::string::npos);

    // Releasing the first campaign's lock frees the store.
    first.reset();
    auto third = ResultStore::open(dir.path);
    EXPECT_TRUE(third.ok());
}

TEST(ResultStore, UnwritableDirectoryIsAConfigError)
{
    ScratchDir dir("store_unwritable");
    ASSERT_TRUE(std::filesystem::create_directories(dir.path));
    std::string blocker = dir.path + "/blocker";
    std::FILE *f = std::fopen(blocker.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);

    auto s = ResultStore::open(blocker + "/nested");
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.error().category, ErrorCategory::Config);
}

} // namespace
} // namespace catchsim
