/**
 * @file
 * Properties of the OOO timing model, including the paper's Section
 * III-A analyses: width-bound dispatch, dependence-chain serialisation,
 * ROB-bound memory-level parallelism, the OOO's ability to hide on-die
 * latencies for independent loads (and its inability to do so for
 * dependent chains), mispredict redirects, and store forwarding.
 */

#include <gtest/gtest.h>

#include <functional>

#include "cache/hierarchy.hh"
#include "core/ooo_core.hh"
#include "sim/configs.hh"

namespace catchsim
{
namespace
{

/** Builds a trace by running @p body repeatedly until @p n ops exist. */
Trace
makeTrace(size_t n, const std::function<void(Emitter &, size_t)> &body)
{
    Trace t;
    t.mem = std::make_shared<FunctionalMemory>();
    Emitter em(*t.mem, t.ops, n);
    size_t iter = 0;
    while (!em.done())
        body(em, iter++);
    return t;
}

double
runIpc(const SimConfig &cfg_in, const Trace &trace)
{
    SimConfig cfg = cfg_in;
    cfg.l1StridePrefetcher = false;
    cfg.l2StreamPrefetcher = false;
    CacheHierarchy h(cfg);
    OooCore core(cfg, 0, h, nullptr, nullptr);
    core.bind(trace);
    while (core.step()) {
    }
    return core.stats().ipc();
}

TEST(CoreTiming, WidthBoundsIndependentOps)
{
    Trace t = makeTrace(20000, [](Emitter &em, size_t) {
        em.setPc(codeBlock(0));
        for (int i = 0; i < 16; ++i)
            em.alu(static_cast<int>(i % 8), {});
        em.branch(true, codeBlock(0), {});
    });
    double ipc = runIpc(baselineSkx(), t);
    // Bounded by ALU issue bandwidth (3 ports) rather than the 4-wide
    // front end for a pure-ALU stream.
    EXPECT_GT(ipc, 2.5);
    EXPECT_LE(ipc, 4.05);
}

TEST(CoreTiming, DependenceChainSerialises)
{
    Trace t = makeTrace(20000, [](Emitter &em, size_t) {
        em.setPc(codeBlock(0));
        for (int i = 0; i < 16; ++i)
            em.alu(r1, {r1}); // 1-cycle serial chain
        em.branch(true, codeBlock(0), {});
    });
    double ipc = runIpc(baselineSkx(), t);
    EXPECT_LT(ipc, 1.3);
    EXPECT_GT(ipc, 0.8);
}

TEST(CoreTiming, FpChainPacesAtFpLatency)
{
    Trace t = makeTrace(20000, [](Emitter &em, size_t) {
        em.setPc(codeBlock(0));
        em.alu(r1, {r1}, OpClass::FpAdd); // 4-cycle serial chain
        em.branch(true, codeBlock(0), {});
    });
    double ipc = runIpc(baselineSkx(), t);
    // 2 ops per ~4 cycles.
    EXPECT_NEAR(ipc, 0.5, 0.12);
}

TEST(CoreTiming, OooHidesL2LatencyForIndependentLoads)
{
    // Section III-A: on-die hit latencies are shorter than what the OOO
    // depth can hide, so independent L2-resident loads do not bound IPC.
    // Working set 256 KB (L2, not L1); iterations independent.
    Trace t = makeTrace(60000, [](Emitter &em, size_t it) {
        em.setPc(codeBlock(0));
        em.alu(r0, {r0});
        Addr a = 0x10000000 + (it * 8 * 64) % (256 * 1024);
        em.load(r1, {r0}, a);
        em.alu(r2, {r1, r3});
        em.branch(true, codeBlock(0), {r0});
    });
    double ipc = runIpc(baselineSkx(), t);
    // 4 ops/iter; near-width despite every load leaving the L1.
    EXPECT_GT(ipc, 2.0);
}

TEST(CoreTiming, DependentChaseExposesL2Latency)
{
    // The same working set accessed as a pointer chase is bound by the
    // L2 round trip - this is what makes loads critical.
    Trace t;
    t.mem = std::make_shared<FunctionalMemory>();
    // Build a 256 KB ring.
    const size_t lines = 256 * 1024 / 64;
    for (size_t i = 0; i < lines; ++i)
        t.mem->write(0x10000000 + i * 64,
                     0x10000000 + ((i + 97) % lines) * 64);
    Emitter em(*t.mem, t.ops, 30000);
    Addr cur = 0x10000000;
    while (!em.done()) {
        em.setPc(codeBlock(0));
        cur = em.load(r1, {r1}, cur);
        em.branch(true, codeBlock(0), {r1});
    }
    double ipc = runIpc(baselineSkx(), t);
    // 2 ops per ~L2 round trip (15): IPC ~ 0.13.
    EXPECT_LT(ipc, 0.25);
}

TEST(CoreTiming, RobBoundsMemoryParallelism)
{
    // Random DRAM-resident loads: throughput must reflect tens of
    // overlapped misses (ROB/loads-per-iter), not serial misses.
    Trace t = makeTrace(40000, [](Emitter &em, size_t it) {
        em.setPc(codeBlock(0));
        em.alu(r0, {r0});
        Addr a = 0x10000000 + (mix64(it) % (1 << 20)) * 64;
        em.load(r1, {r0}, a);
        em.alu(r2, {r1, r2});
        em.branch(true, codeBlock(0), {r0});
    });
    double ipc = runIpc(baselineSkx(), t);
    // Serial misses would give 4/180 = 0.022; overlapped must be far
    // higher, but bounded by DRAM bandwidth.
    EXPECT_GT(ipc, 0.15);
    EXPECT_LT(ipc, 4.0);
}

TEST(CoreTiming, MispredictsCostRedirects)
{
    auto body = [](bool predictable) {
        return [predictable](Emitter &em, size_t it) {
            em.setPc(codeBlock(0));
            em.alu(r0, {r0});
            em.alu(r1, {r0});
            bool taken = predictable ? true : (mix64(it) & 1);
            em.branch(taken, codeBlock(0) + 0x40, {r1});
            em.alu(r2, {r1});
            em.branch(true, codeBlock(0), {r0});
        };
    };
    double good = runIpc(baselineSkx(), makeTrace(30000, body(true)));
    double bad = runIpc(baselineSkx(), makeTrace(30000, body(false)));
    EXPECT_GT(good, bad * 1.5);
}

TEST(CoreTiming, StoreForwardingBeatsCacheMiss)
{
    // A load immediately following a store to the same word must forward
    // (never pay a memory miss), even cold.
    Trace t = makeTrace(20000, [](Emitter &em, size_t it) {
        em.setPc(codeBlock(0));
        Addr a = 0x20000000 + (it % 1024) * 8;
        em.store({r1}, a, it);
        em.load(r2, {r0}, a);
        em.alu(r3, {r2});
        em.branch(true, codeBlock(0), {r0});
    });
    SimConfig cfg = baselineSkx();
    cfg.l1StridePrefetcher = false;
    cfg.l2StreamPrefetcher = false;
    CacheHierarchy h(cfg);
    OooCore core(cfg, 0, h, nullptr, nullptr);
    core.bind(t);
    while (core.step()) {
    }
    EXPECT_GT(core.stats().forwardedLoads, 4500u); // ~1 load per 4 ops
}

TEST(CoreTiming, CodeMissesStallTheFrontEnd)
{
    // A huge code footprint (every iteration in a new block) vs a tight
    // loop: the former must be slower purely from L1I misses.
    Trace big_code = makeTrace(30000, [](Emitter &em, size_t it) {
        em.setPc(codeBlock(static_cast<unsigned>(it % 4096)));
        for (int i = 0; i < 12; ++i)
            em.alu(static_cast<int>(i % 8), {});
    });
    Trace tight = makeTrace(30000, [](Emitter &em, size_t) {
        em.setPc(codeBlock(0));
        for (int i = 0; i < 12; ++i)
            em.alu(static_cast<int>(i % 8), {});
        em.branch(true, codeBlock(0), {});
    });
    double slow = runIpc(baselineSkx(), big_code);
    double fast = runIpc(baselineSkx(), tight);
    EXPECT_GT(fast, slow * 1.3);
}

TEST(CoreTiming, RetireIsMonotonic)
{
    Trace t = makeTrace(5000, [](Emitter &em, size_t it) {
        em.setPc(codeBlock(0));
        em.load(r1, {r0}, 0x10000000 + (mix64(it) % 4096) * 64);
        em.alu(r2, {r1});
        em.branch(true, codeBlock(0), {r0});
    });
    SimConfig cfg = baselineSkx();
    CacheHierarchy h(cfg);
    OooCore core(cfg, 0, h, nullptr, nullptr);
    core.bind(t);
    Cycle prev = 0;
    while (core.step()) {
        EXPECT_GE(core.now(), prev);
        prev = core.now();
    }
}

TEST(CoreTiming, DeterministicAcrossRuns)
{
    auto run = []() {
        Trace t = makeTrace(10000, [](Emitter &em, size_t it) {
            em.setPc(codeBlock(0));
            em.load(r1, {r0}, 0x10000000 + (mix64(it) % 8192) * 64);
            em.alu(r2, {r1, r2});
            em.branch(true, codeBlock(0), {r0});
        });
        return runIpc(baselineSkx(), t);
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

} // namespace
} // namespace catchsim
