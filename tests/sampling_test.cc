/**
 * @file
 * Sampled-simulation acceptance tests, in four layers:
 *
 *  1. Accuracy: for every quick kernel under both hierarchy shapes the
 *     sampled-mode IPC must land within 3% of the full detailed run.
 *     The sampling parameters here are the dense short-run operating
 *     point (interval 5000, window 2000, warmup 2000 — see
 *     docs/PERFORMANCE.md): at 1 M instrs that yields 200 windows,
 *     enough for the ratio estimator to average out phase aliasing.
 *     Everything is deterministic, so these are exact regression gates,
 *     not statistical ones.
 *  2. Determinism: the sample schedule derives from the instruction
 *     counter alone, so sampled results must be bitwise-identical
 *     across repeated runs and across any --jobs count.
 *  3. Golden pinning: SampleMode::Detailed output must stay
 *     hash-identical to goldens captured before the sampling engine
 *     existed — adding the mode cannot perturb the detailed path.
 *  4. FastForward contract: the warming engine updates state only —
 *     it leaves every stats counter untouched while placing lines.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "core/branch_predictor.hh"
#include "sim/configs.hh"
#include "sim/fast_forward.hh"
#include "sim/parallel_runner.hh"
#include "sim/simulator.hh"
#include "sim_result_compare.hh"
#include "trace/suite.hh"
#include "trace/workload.hh"

namespace catchsim
{
namespace
{

SimConfig
catchNoL2()
{
    return withCatch(noL2(baselineSkx(), 9728));
}

SimConfig
denseSampling(SimConfig cfg)
{
    cfg.sampling.mode = SampleMode::Sampled;
    cfg.sampling.intervalInstrs = 5000;
    cfg.sampling.windowInstrs = 2000;
    cfg.sampling.warmupInstrs = 2000;
    return cfg;
}

// ---------------------------------------------------------------------
// 1. Accuracy against the detailed oracle.

class SampledAccuracy : public ::testing::TestWithParam<const char *>
{
  protected:
    static constexpr uint64_t kInstr = 1000000;
    static constexpr uint64_t kWarm = 20000;

    void
    expectWithinThreePercent(const SimConfig &cfg)
    {
        std::vector<std::string> names = stQuickNames();
        for (const std::string &name : names) {
            SimResult det = runWorkload(cfg, name, kInstr, kWarm);
            SimResult sam =
                runWorkload(denseSampling(cfg), name, kInstr, kWarm);
            ASSERT_GT(det.ipc, 0.0) << name;
            EXPECT_TRUE(sam.sampled) << name;
            EXPECT_GT(sam.sample.windows, 0u) << name;
            double rel = (sam.ipc - det.ipc) / det.ipc;
            EXPECT_LE(rel < 0 ? -rel : rel, 0.03)
                << name << ": detailed IPC " << det.ipc
                << " vs sampled " << sam.ipc;
        }
    }
};

TEST_F(SampledAccuracy, QuickKernelsWithinThreePercentBaseline)
{
    expectWithinThreePercent(baselineSkx());
}

TEST_F(SampledAccuracy, QuickKernelsWithinThreePercentCatchNoL2)
{
    expectWithinThreePercent(catchNoL2());
}

// ---------------------------------------------------------------------
// 2. Bitwise determinism of the sampled schedule.

TEST(SampledDeterminism, RepeatedRunsAreBitwiseIdentical)
{
    SimConfig cfg = denseSampling(catchNoL2());
    SimResult a = runWorkload(cfg, "mcf", 120000, 10000);
    SimResult b = runWorkload(cfg, "mcf", 120000, 10000);
    EXPECT_TRUE(a.sampled);
    expectBitwiseEqual(a, b);
}

TEST(SampledDeterminism, IdenticalAcrossJobCounts)
{
    // The schedule is a pure function of the instruction counter, so
    // thread scheduling must not be able to perturb it: jobs=8 and
    // jobs=16 (both far above the core count) must reproduce the
    // serial results bit for bit, in order.
    SimConfig cfg = denseSampling(baselineSkx());
    std::vector<std::string> names = {"mcf", "hpc.stream", "gobmk",
                                      "tpcc"};
    std::vector<SimResult> serial =
        runWorkloadsParallel(cfg, names, 120000, 10000, 1);
    ASSERT_EQ(serial.size(), names.size());
    for (unsigned jobs : {8u, 16u}) {
        std::vector<SimResult> parallel =
            runWorkloadsParallel(cfg, names, 120000, 10000, jobs);
        ASSERT_EQ(parallel.size(), names.size());
        for (size_t i = 0; i < names.size(); ++i) {
            EXPECT_TRUE(parallel[i].sampled) << names[i];
            expectBitwiseEqual(serial[i], parallel[i]);
        }
    }
}

// ---------------------------------------------------------------------
// 3. Detailed-mode goldens: hash-pinned to pre-sampling outputs.

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

struct Golden
{
    const char *workload;
    uint64_t baseline;
    uint64_t catchNoL2;
};

// Captured from the detailed engine before SampleMode::Sampled landed
// (35000 instrs, 10000 warmup, FNV-1a over SimResult::toJson()). A
// mismatch means the detailed path's behavior or its JSON shape moved.
constexpr Golden kGoldens[] = {
    {"mcf", 0xf9391f77ea8af31bULL, 0x00b3698ad7225a12ULL},
    {"hpc.stream", 0x5cdef3a49a20c4b3ULL, 0x2f932fbb89cb4684ULL},
    {"gobmk", 0x4e833b3fe4105e00ULL, 0xbf2dd78946d275a2ULL},
};

TEST(DetailedGolden, OutputHashUnchangedBySamplingEngine)
{
    for (const Golden &g : kGoldens) {
        SimResult base =
            runWorkload(baselineSkx(), g.workload, 35000, 10000);
        EXPECT_FALSE(base.sampled) << g.workload;
        EXPECT_EQ(fnv1a(base.toJson()), g.baseline) << g.workload;

        SimResult cat = runWorkload(catchNoL2(), g.workload, 35000,
                                    10000);
        EXPECT_EQ(fnv1a(cat.toJson()), g.catchNoL2) << g.workload;
    }
}

TEST(DetailedGolden, DetailedJsonCarriesNoSamplingBlock)
{
    SimResult det = runWorkload(baselineSkx(), "mcf", 35000, 10000);
    EXPECT_EQ(det.toJson().find("\"sampling\""), std::string::npos);
}

TEST(SampledJson, RoundTripPreservesSampleBlock)
{
    SimConfig cfg = denseSampling(baselineSkx());
    SimResult sam = runWorkload(cfg, "mcf", 120000, 10000);
    ASSERT_TRUE(sam.sampled);
    std::string json = sam.toJson();
    EXPECT_NE(json.find("\"sampling\""), std::string::npos);
    Expected<SimResult> back = SimResult::fromJson(json);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_TRUE(back.value().sampled);
    EXPECT_EQ(back.value().sample.windows, sam.sample.windows);
    EXPECT_EQ(back.value().sample.warmedInstrs, sam.sample.warmedInstrs);
    EXPECT_EQ(back.value().toJson(), json);
}

// ---------------------------------------------------------------------
// 4. FastForward: state-only stepping.

TEST(FastForward, WarmClampsToTraceEnd)
{
    auto wl = makeWorkload("mcf");
    Trace trace = wl->generate(5000);
    SimConfig cfg = baselineSkx();
    CacheHierarchy hier(cfg);
    BranchPredictor bp;
    FastForward ff(0, hier, bp, nullptr);
    ff.bind(trace);
    EXPECT_EQ(ff.warm(0, 3000, 0), 3000u);
    EXPECT_EQ(ff.warm(3000, 100000, 0), 5000u);
}

TEST(FastForward, WarmingPlacesLinesButTouchesNoStats)
{
    auto wl = makeWorkload("mcf");
    Trace trace = wl->generate(20000);
    SimConfig cfg = baselineSkx();
    CacheHierarchy hier(cfg);
    BranchPredictor bp;
    FastForward ff(0, hier, bp, nullptr);
    ff.bind(trace);
    ff.warm(0, 20000, 0);

    // The last data access's line must be L1D-resident: it was MRU in
    // its set when the trace ended, and nothing after it could have
    // evicted it.
    for (size_t i = trace.ops.size(); i-- > 0;) {
        const MicroOp &op = trace.ops[i];
        if (op.cls == OpClass::Load || op.cls == OpClass::Store) {
            EXPECT_TRUE(hier.residentIn(0, op.memAddr, Level::L1));
            break;
        }
    }

    // State only: every demand/miss/fill counter stays zero.
    EXPECT_EQ(hier.stats().ringTransfers, 0u);
    EXPECT_EQ(hier.stats().memTransfers, 0u);
    EXPECT_EQ(hier.l1dStats(0).demandAccesses, 0u);
    EXPECT_EQ(hier.l1dStats(0).fills, 0u);
    EXPECT_EQ(hier.l1iStats(0).demandAccesses, 0u);
    EXPECT_EQ(hier.llcStats().fills, 0u);
}

} // namespace
} // namespace catchsim
