#include "core.hh"

void
OooCore::step()
{
    // Stale: nothing on the next line allocates.
    // catch-analyze: allow(step-alloc-transitive)
    tick_ += 1;
}
