#pragma once

class OooCore {
  public:
    void step();

  private:
    int tick_ = 0;
};
