#pragma once

class Tables {
  public:
    void saveWarmState(int &sink) const;

  private:
    int state_ = 0;
};
