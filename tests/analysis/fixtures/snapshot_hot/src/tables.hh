#pragma once

class Tables {
  public:
    void saveWarmState(int &sink) const;
    void restorePages(const int &pages);

  private:
    int state_ = 0;
};
