#include "cache.hh"

void
Cache::lookup(int addr)
{
    int sink = addr;
    tables_.saveWarmState(sink); // serialization on the per-cycle path
    tables_.restorePages(sink);  // page-image restore: same violation
}

void
Checkpoint::capture()
{
    int sink = 0;
    tables_.saveWarmState(sink); // run-boundary: legal
    tables_.restorePages(sink);  // run-boundary: legal
}
