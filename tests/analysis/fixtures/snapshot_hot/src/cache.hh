#pragma once
#include "tables.hh"

class Cache {
  public:
    void lookup(int addr);

  private:
    Tables tables_;
};

// Run-boundary checkpointing: legal caller of the serializer (the
// negative control — not reachable from any per-cycle entry).
class Checkpoint {
  public:
    void capture();

  private:
    Tables tables_;
};
