#include "tables.hh"

void
Tables::saveWarmState(int &sink) const
{
    sink = state_;
}

void
Tables::restorePages(const int &pages)
{
    state_ = pages;
}
