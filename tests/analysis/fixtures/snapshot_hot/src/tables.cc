#include "tables.hh"

void
Tables::saveWarmState(int &sink) const
{
    sink = state_;
}
