#pragma once
#include <cstdint>
#include <map>
#include <unordered_map>

std::uint64_t sumAll();
