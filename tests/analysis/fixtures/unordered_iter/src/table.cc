#include "table.hh"

std::uint64_t
sumAll()
{
    std::unordered_map<int, int> lookup_;
    std::map<int, int> ordered_;
    std::uint64_t sum = 0;
    for (const auto &kv : lookup_) { // order is unspecified
        sum += static_cast<std::uint64_t>(kv.second);
    }
    for (const auto &kv : ordered_) { // fine: std::map is ordered
        sum += static_cast<std::uint64_t>(kv.second);
    }
    return sum;
}
