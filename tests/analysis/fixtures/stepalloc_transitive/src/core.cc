#include "core.hh"

void
OooCore::bind(int n)
{
    helper_.sizeTables(n); // setup path: its reserve stays legal
}

void
OooCore::step()
{
    // The allocation is two edges away, in another TU: only the
    // call graph sees it.
    helper_.record(42);
}
