#pragma once
#include <vector>

class Helper {
  public:
    void sizeTables(int n);
    void record(int v);

  private:
    void append(int v);
    std::vector<int> log_;
};
