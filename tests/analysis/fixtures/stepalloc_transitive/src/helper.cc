#include "helper.hh"

void
Helper::sizeTables(int n)
{
    log_.reserve(n); // reached only through bind(): setup, legal
}

void
Helper::record(int v)
{
    append(v);
}

void
Helper::append(int v)
{
    log_.push_back(v); // reachable from OooCore::step via record()
}
