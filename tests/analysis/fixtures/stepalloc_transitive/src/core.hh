#pragma once
#include "helper.hh"

class OooCore {
  public:
    void bind(int n);
    void step();

  private:
    Helper helper_;
};
