#include "tick.hh"

std::uint64_t
tickNow()
{
    Tick base = 7; // fine: Tick is not a clock
    return static_cast<std::uint64_t>(
               Clk::now().time_since_epoch().count()) +
           base;
}
