#pragma once
#include <chrono>
#include <cstdint>

// The alias hides the banned clock from line regexes: only alias
// resolution sees that Clk::now() is a wall-clock read.
using Clk = std::chrono::steady_clock;

// Negative control: an alias to a plain integer type stays legal.
using Tick = std::uint64_t;

std::uint64_t tickNow();
