#include "counters.hh"

// Positive: namespace-scope mutable state.
int g_callCount;

// Negatives: immutable namespace-scope data is fine.
constexpr int kStride = 64;
const int kWays = 8;
static const char *const kName = "fixture";

int
bump()
{
    g_callCount += kStride + kWays;
    return g_callCount + static_cast<int>(kName[0]);
}
