#pragma once

int bump();
