#pragma once

struct WarmConfig {
    unsigned ways = 8;
    unsigned newKnob = 0;
    unsigned intervalInstrs = 20000;
};

class FastForward {
  public:
    void warm(int pos);

  private:
    WarmConfig cfg_;
    int state_ = 0;
};
