// Miniature digest: covers 'ways' but not 'newKnob'.
unsigned long
warmConfigDigest(const WarmConfig &cfg)
{
    unsigned long h = 1469598103934665603UL;
    h = (h ^ cfg.ways) * 1099511628211UL;
    return h;
}
