// Miniature digests: warmConfigDigest covers 'ways', the schedule
// digest covers 'intervalInstrs'; neither covers 'newKnob'.
unsigned long
warmConfigDigest(const WarmConfig &cfg)
{
    unsigned long h = 1469598103934665603UL;
    h = (h ^ cfg.ways) * 1099511628211UL;
    return h;
}

unsigned long
sampleScheduleDigest(const WarmConfig &cfg)
{
    unsigned long h = 1469598103934665603UL;
    h = (h ^ cfg.intervalInstrs) * 1099511628211UL;
    return h;
}
