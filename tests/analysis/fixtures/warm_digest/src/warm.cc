#include "warm.hh"

void
FastForward::warm(int pos)
{
    // 'ways' is in the digest: quiet. 'intervalInstrs' is covered by
    // the schedule digest (the window-boundary re-key): also quiet.
    // 'newKnob' is a warming-visible knob both digests forgot: the
    // finding.
    state_ += pos % static_cast<int>(cfg_.ways);
    state_ += static_cast<int>(cfg_.intervalInstrs);
    state_ += static_cast<int>(cfg_.newKnob);
}
