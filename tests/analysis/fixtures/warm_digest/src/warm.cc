#include "warm.hh"

void
FastForward::warm(int pos)
{
    // 'ways' is in the digest: quiet. 'newKnob' is a warming-visible
    // knob the digest forgot: the finding.
    state_ += pos % static_cast<int>(cfg_.ways);
    state_ += static_cast<int>(cfg_.newKnob);
}
