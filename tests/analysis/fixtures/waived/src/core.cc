#include "core.hh"

void
OooCore::step()
{
    // Inline waiver, next-line form (the trailing form works too).
    // catch-analyze: allow(step-alloc-transitive)
    buf_.push_back(1);
    refill();
}

void
OooCore::refill()
{
    // Cut by the boundary waiver on OooCore::refill.
    chunk_.push_back(2);
}
