#include "host.hh"
#include <chrono>

double
hostSeconds()
{
    // Suppressed by the file waiver on src/host.cc.
    auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(t).count();
}
