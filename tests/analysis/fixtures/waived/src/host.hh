#pragma once

double hostSeconds();
