#pragma once
#include <vector>

class OooCore {
  public:
    void step();

  private:
    void refill();
    std::vector<int> buf_;
    std::vector<int> chunk_;
};
