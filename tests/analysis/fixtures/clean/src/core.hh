#pragma once
#include <vector>

class OooCore {
  public:
    void bind(int n);
    void step();

  private:
    void helperTick(int t);
    std::vector<int> buf_;
    int tick_ = 0;
};
