#include "core.hh"

void
OooCore::bind(int n)
{
    buf_.reserve(n); // setup-time allocation is legal
}

void
OooCore::step()
{
    helperTick(tick_);
}

void
OooCore::helperTick(int t)
{
    tick_ = t + 1;
}
