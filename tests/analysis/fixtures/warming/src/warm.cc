#include "warm.hh"

void
FastForward::warm(int pos)
{
    touch(pos);
}

void
FastForward::touch(int pos)
{
    ++stats_.warmHits;    // stats mutation on the warming path
    dram_.read(pos);      // timing-model call on the warming path
}
