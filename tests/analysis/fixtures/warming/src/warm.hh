#pragma once
#include "dram.hh"

struct WarmStats {
    unsigned long warmHits = 0;
};

class FastForward {
  public:
    void warm(int pos);

  private:
    void touch(int pos);
    WarmStats stats_;
    Dram dram_;
};
