#pragma once

class Dram {
  public:
    unsigned long read(int addr);

  private:
    unsigned long reads_ = 0;
};
