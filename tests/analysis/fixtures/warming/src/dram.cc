#include "dram.hh"

unsigned long
Dram::read(int addr)
{
    // Legal here: stats inside the timing model belong to the
    // detailed path; the finding is the *edge* into Dram.
    ++reads_;
    return static_cast<unsigned long>(addr) + 200;
}
