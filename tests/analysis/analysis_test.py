#!/usr/bin/env python3
"""ctest harness for tools/analysis/catch_analyze.py.

Each fixture under tests/analysis/fixtures/ is a miniature repo (src/,
optional tools/analysis/waivers.txt). Fixtures named after a rule must
fail with that rule in the output and contain a negative control that
must stay quiet; `clean` and `waived` must pass; `unusedwaiver` passes
by default and fails --check-waivers.

Fixtures run with --frontend text so they work without a clang
toolchain; when clang++ is on PATH an extra parity test checks the
clang frontend reports the same cross-TU violation.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
ANALYZER = HERE.parents[1] / "tools" / "analysis" / "catch_analyze.py"

# fixture directory -> rule tag expected in the findings (None = clean)
EXPECTATIONS = {
    "clean": None,
    "waived": None,
    "unusedwaiver": None,  # clean by default; fails --check-waivers
    "stepalloc_transitive": "step-alloc-transitive",
    "warming": "warming-purity",
    "snapshot_hot": "snapshot-hot-path",
    "warm_digest": "warm-digest",
    "typedef_clock": "determinism-ast",
    "unordered_iter": "unordered-iter",
    "global_state": "global-state",
}


def run_analyzer(root: Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(ANALYZER), "--root", str(root),
         "--frontend", "text", *extra],
        capture_output=True, text=True, timeout=120)


class CatchAnalyzeFixtures(unittest.TestCase):
    def test_every_fixture_has_an_expectation(self):
        on_disk = {p.name for p in FIXTURES.iterdir() if p.is_dir()}
        self.assertEqual(on_disk, set(EXPECTATIONS),
                         "fixtures and EXPECTATIONS out of sync")

    def test_fixtures(self):
        for name, rule in EXPECTATIONS.items():
            with self.subTest(fixture=name):
                proc = run_analyzer(FIXTURES / name)
                output = proc.stdout + proc.stderr
                if rule is None:
                    self.assertEqual(
                        proc.returncode, 0,
                        f"{name} must be clean, got:\n{output}")
                else:
                    self.assertEqual(
                        proc.returncode, 1,
                        f"{name} must fail, got rc={proc.returncode}:"
                        f"\n{output}")
                    self.assertIn(
                        f"[{rule}]", output,
                        f"{name} must report rule {rule}:\n{output}")

    def test_transitive_alloc_reports_the_cross_tu_chain(self):
        # The violation is two call edges away in another TU; the
        # finding must carry the witness path, and the setup-time
        # reserve reached only through bind() must stay legal.
        proc = run_analyzer(FIXTURES / "stepalloc_transitive")
        self.assertIn(
            "OooCore::step -> Helper::record -> Helper::append",
            proc.stdout)
        self.assertNotIn("sizeTables", proc.stdout,
                         "setup-path reserve must not be reported")
        self.assertEqual(
            len([l for l in proc.stdout.splitlines()
                 if "[step-alloc-transitive]" in l]), 1, proc.stdout)

    def test_warming_reports_stats_and_timing_separately(self):
        proc = run_analyzer(FIXTURES / "warming")
        self.assertIn("stats mutation", proc.stdout)
        self.assertIn("timing model (Dram::read)", proc.stdout)
        # Stats inside the timing model itself are the detailed
        # path's business: only the edge into Dram is a finding.
        self.assertNotIn("dram.cc", proc.stdout)

    def test_snapshot_hot_path_covers_the_page_image_half(self):
        # The COW page-image serializers (restorePages et al.) are
        # run-boundary operations exactly like the blob serializers:
        # both callees in Cache::lookup are findings, and neither of
        # Checkpoint::capture's calls is.
        proc = run_analyzer(FIXTURES / "snapshot_hot")
        findings = [l for l in proc.stdout.splitlines()
                    if "[snapshot-hot-path]" in l]
        self.assertEqual(len(findings), 2, proc.stdout)
        self.assertTrue(any("saveWarmState" in l for l in findings),
                        proc.stdout)
        self.assertTrue(any("restorePages" in l for l in findings),
                        proc.stdout)
        self.assertNotIn("Checkpoint", proc.stdout,
                         "run-boundary callers must stay legal")

    def test_warm_digest_honors_the_schedule_digest(self):
        # A schedule knob covered by sampleScheduleDigest() must stay
        # quiet; only the knob neither digest covers is a finding.
        proc = run_analyzer(FIXTURES / "warm_digest")
        findings = [l for l in proc.stdout.splitlines()
                    if "[warm-digest]" in l]
        self.assertEqual(len(findings), 1, proc.stdout)
        self.assertIn("newKnob", findings[0])
        self.assertNotIn("intervalInstrs", proc.stdout,
                         "schedule-digest-covered knobs must stay "
                         "legal")

    def test_typedef_clock_names_the_alias(self):
        proc = run_analyzer(FIXTURES / "typedef_clock")
        self.assertIn("alias 'Clk'", proc.stdout)
        self.assertIn("steady_clock", proc.stdout)
        self.assertNotIn("'Tick'", proc.stdout,
                         "non-clock alias must stay legal")

    def test_unordered_iter_spares_ordered_maps(self):
        proc = run_analyzer(FIXTURES / "unordered_iter")
        findings = [l for l in proc.stdout.splitlines()
                    if "[unordered-iter]" in l]
        self.assertEqual(len(findings), 1, proc.stdout)
        self.assertIn("'lookup_'", findings[0])

    def test_global_state_spares_const_and_constexpr(self):
        proc = run_analyzer(FIXTURES / "global_state")
        findings = [l for l in proc.stdout.splitlines()
                    if "[global-state]" in l]
        self.assertEqual(len(findings), 1, proc.stdout)
        self.assertIn("g_callCount", findings[0])

    def test_all_three_waiver_forms_suppress_and_stay_live(self):
        # inline (next-line), file-level and boundary waivers all
        # suppress their finding AND none reads as stale.
        proc = run_analyzer(FIXTURES / "waived", "--check-waivers")
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)

    def test_check_waivers_flags_stale_entries(self):
        proc = run_analyzer(FIXTURES / "unusedwaiver",
                            "--check-waivers")
        output = proc.stdout + proc.stderr
        self.assertEqual(proc.returncode, 1, output)
        self.assertIn("inline waiver allow(step-alloc-transitive)",
                      output)
        self.assertIn("determinism-ast src/core.cc", output)
        self.assertIn("boundary:OooCore::missing", output)

    def test_entry_points_resolve_in_the_real_tree(self):
        # Guards against the entry list rotting after a rename: every
        # listed entry point must exist in the real repo's graph.
        repo = ANALYZER.parents[2]
        proc = run_analyzer(repo, "--list-entries")
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)
        self.assertNotIn("MISSING", proc.stdout, proc.stdout)

    def test_real_repo_is_clean(self):
        repo = ANALYZER.parents[2]
        proc = run_analyzer(repo, "--check-waivers")
        self.assertEqual(
            proc.returncode, 0,
            "the real tree must stay analyzer-clean (waivers "
            "included):\n" + proc.stdout + proc.stderr)


class ClangFrontendParity(unittest.TestCase):
    """Exercised where a clang toolchain exists (CI); skipped
    elsewhere so ctest needs no toolchain beyond python."""

    def setUp(self):
        self.clangxx = os.environ.get("CATCH_CLANGXX") \
            or shutil.which("clang++")
        if not self.clangxx:
            self.skipTest("clang++ not available")

    def test_clang_frontend_finds_the_cross_tu_alloc(self):
        root = FIXTURES / "stepalloc_transitive"
        with tempfile.TemporaryDirectory() as td:
            compdb = Path(td) / "compile_commands.json"
            entries = [
                {"directory": str(root),
                 "command": f"{self.clangxx} -std=c++20 -c {cc}",
                 "file": str(cc)}
                for cc in sorted((root / "src").glob("*.cc"))
            ]
            compdb.write_text(json.dumps(entries))
            proc = subprocess.run(
                [sys.executable, str(ANALYZER), "--root", str(root),
                 "--frontend", "clang", "--compdb", str(compdb)],
                capture_output=True, text=True, timeout=300)
            output = proc.stdout + proc.stderr
            self.assertEqual(proc.returncode, 1, output)
            self.assertIn("[step-alloc-transitive]", output)
            self.assertIn(
                "OooCore::step -> Helper::record -> Helper::append",
                output)


if __name__ == "__main__":
    unittest.main(verbosity=2)
